#include "baselines/cic.hpp"
#include "baselines/lmac.hpp"
#include "baselines/random_cp.hpp"
#include "baselines/standard_lorawan.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/traffic.hpp"

namespace alphawan {
namespace {

ChannelModelConfig quiet_channel() {
  // The paper's controlled capacity experiments use stable links (fixed
  // node placements, clear margins); heavy shadowing would conflate
  // decoder contention with RF capture losses.
  ChannelModelConfig cfg;
  cfg.shadowing_sigma_db = Db{0.3};
  cfg.fast_fading_sigma_db = Db{0.1};
  return cfg;
}

struct BaselineFixture {
  Deployment deployment{Region{Meters{1200.0}, Meters{1000.0}}, spectrum_1m6()};
  Network* network = nullptr;
  Rng rng{41};

  BaselineFixture() {
    network = &deployment.add_network("op");
    deployment.place_gateways(*network, 3, default_profile(), rng);
    deployment.place_nodes(*network, 30, rng);
  }
};

TEST(StandardLorawan, GatewaysHomogeneous) {
  BaselineFixture f;
  StandardLorawanPolicy().configure(f.deployment, *f.network, f.rng);
  const auto& gws = f.network->gateways();
  // 1.6 MHz holds a single standard plan: all identical.
  for (std::size_t i = 1; i < gws.size(); ++i) {
    EXPECT_EQ(gws[i].channels(), gws[0].channels());
  }
  EXPECT_EQ(gws[0].channels().size(), 8u);
}

TEST(StandardLorawan, AdrSkewsTowardsFastRates) {
  // Fig. 6d/6e: standard ADR pushes most users to high DRs.
  BaselineFixture f;
  StandardLorawanOptions options;
  options.use_adr = true;
  StandardLorawanPolicy(options).configure(f.deployment, *f.network, f.rng);
  int dr45 = 0;
  for (const auto& node : f.network->nodes()) {
    if (node.config().dr == DataRate::kDR5 ||
        node.config().dr == DataRate::kDR4) {
      ++dr45;
    }
  }
  EXPECT_GT(dr45, static_cast<int>(f.network->nodes().size()) / 2);
}

TEST(StandardLorawan, NoAdrStaysAtDr0) {
  BaselineFixture f;
  StandardLorawanOptions options;
  options.use_adr = false;
  StandardLorawanPolicy(options).configure(f.deployment, *f.network, f.rng);
  for (const auto& node : f.network->nodes()) {
    EXPECT_EQ(node.config().dr, DataRate::kDR0);
  }
}

TEST(RandomCp, ChannelsValidAndReduced) {
  BaselineFixture f;
  RandomCpPolicy().configure(f.deployment, *f.network, f.rng);
  for (const auto& gw : f.network->gateways()) {
    EXPECT_GE(gw.channels().size(), 2u);
    EXPECT_LE(gw.channels().size(), 4u);
    EXPECT_TRUE(valid_for_profile(GatewayChannelConfig{gw.channels()},
                                  gw.profile()));
    // Channels sit on the standard grid.
    for (const auto& ch : gw.channels()) {
      const int idx = f.deployment.spectrum().nearest_grid_index(ch.center);
      EXPECT_NEAR(ch.center.value(),
                  f.deployment.spectrum().grid_center(idx).value(), 1.0);
    }
  }
}

TEST(Lmac, EliminatesInRangeSameChannelOverlap) {
  BaselineFixture f;
  std::vector<EndNode*> nodes;
  // 6 nodes, all on the same channel and SF: guaranteed collisions
  // without carrier sensing.
  for (int i = 0; i < 6; ++i) {
    NodeRadioConfig cfg;
    cfg.channel = f.deployment.spectrum().grid_channel(0);
    cfg.dr = DataRate::kDR5;
    auto& node = f.network->add_node(f.deployment.next_node_id(),
                                     Point{Meters{500.0 + i * 10.0}, Meters{500.0}}, cfg);
    nodes.push_back(&node);
  }
  PacketIdSource ids;
  auto txs = concurrent_burst(nodes, Seconds{0.0}, ids);
  Rng rng(3);
  const auto scheduled = LmacPolicy().shape_window(txs, rng);
  ASSERT_EQ(scheduled.size(), 6u);
  // After CSMA, no two same-channel transmissions within sense range
  // overlap in time.
  for (std::size_t i = 0; i < scheduled.size(); ++i) {
    for (std::size_t j = i + 1; j < scheduled.size(); ++j) {
      EXPECT_FALSE(scheduled[i].overlaps_in_time(scheduled[j]))
          << i << " vs " << j;
    }
  }
}

TEST(Lmac, DifferentChannelsUntouched) {
  BaselineFixture f;
  std::vector<EndNode*> nodes;
  for (int i = 0; i < 4; ++i) {
    NodeRadioConfig cfg;
    cfg.channel = f.deployment.spectrum().grid_channel(i);
    cfg.dr = DataRate::kDR5;
    nodes.push_back(&f.network->add_node(f.deployment.next_node_id(),
                                         Point{Meters{500}, Meters{500}}, cfg));
  }
  PacketIdSource ids;
  auto txs = concurrent_burst(nodes, Seconds{0.0}, ids);
  Rng rng(5);
  const auto scheduled = LmacPolicy().shape_window(txs, rng);
  for (const auto& tx : scheduled) EXPECT_DOUBLE_EQ(tx.start.value(), 0.0);
}

TEST(Lmac, HiddenTerminalsStillCollide) {
  BaselineFixture f;
  std::vector<EndNode*> nodes;
  NodeRadioConfig cfg;
  cfg.channel = f.deployment.spectrum().grid_channel(0);
  cfg.dr = DataRate::kDR5;
  // Two nodes far apart (beyond the 1.5 km sense range).
  nodes.push_back(&f.network->add_node(f.deployment.next_node_id(),
                                       Point{Meters{0}, Meters{0}}, cfg));
  nodes.push_back(&f.network->add_node(f.deployment.next_node_id(),
                                       Point{Meters{1200}, Meters{990}}, cfg));
  PacketIdSource ids;
  auto txs = concurrent_burst(nodes, Seconds{0.0}, ids);
  LmacOptions options;
  options.sense_range = Meters{800.0};
  Rng rng(7);
  const auto scheduled = LmacPolicy(options).shape_window(txs, rng);
  EXPECT_TRUE(scheduled[0].overlaps_in_time(scheduled[1]));
}

TEST(Lmac, DeferralBounded) {
  BaselineFixture f;
  std::vector<EndNode*> nodes;
  NodeRadioConfig cfg;
  cfg.channel = f.deployment.spectrum().grid_channel(0);
  cfg.dr = DataRate::kDR0;  // long airtime: deferrals add up
  for (int i = 0; i < 10; ++i) {
    nodes.push_back(&f.network->add_node(f.deployment.next_node_id(),
                                         Point{Meters{500}, Meters{500}}, cfg));
  }
  PacketIdSource ids;
  auto txs = concurrent_burst(nodes, Seconds{0.0}, ids);
  LmacOptions options;
  options.max_defer = Seconds{2.0};
  Rng rng(9);
  const auto scheduled = LmacPolicy(options).shape_window(txs, rng);
  for (const auto& tx : scheduled) {
    EXPECT_LE(tx.start, Seconds{2.0 + 1e-9});
  }
}

TEST(Cic, ResolvesSmallCollisions) {
  // Two same-SF same-channel packets collide on a stock gateway; a CIC
  // receiver recovers both.
  Deployment deployment{Region{Meters{600.0}, Meters{600.0}}, spectrum_1m6(), quiet_channel()};
  auto& network = deployment.add_network("op");
  auto& gw = network.add_gateway(1, deployment.region().center(),
                                 default_profile());
  gw.apply_channels(GatewayChannelConfig{
      standard_plan(deployment.spectrum(), 0).channels});
  NodeRadioConfig cfg;
  cfg.channel = deployment.spectrum().grid_channel(0);
  cfg.dr = DataRate::kDR3;
  auto& n1 = network.add_node(1, Point{Meters{300}, Meters{310}}, cfg);
  auto& n2 = network.add_node(2, Point{Meters{310}, Meters{300}}, cfg);

  PacketIdSource ids;
  ScenarioRunner runner(deployment);
  std::vector<Transmission> txs = {n1.make_transmission(Seconds{0.0}, 10, ids.next()),
                                   n2.make_transmission(Seconds{0.0}, 10, ids.next())};
  const auto stock = runner.run_window(txs);
  EXPECT_EQ(stock.total_delivered(), 0u);

  RunOptions cic_options;
  cic_options.capture_policy = std::make_shared<CicCapturePolicy>();
  ScenarioRunner cic_runner(deployment, 7, std::move(cic_options));
  txs = {n1.make_transmission(Seconds{10.0}, 10, ids.next()),
         n2.make_transmission(Seconds{10.0}, 10, ids.next())};
  const auto with_cic = cic_runner.run_window(txs);
  EXPECT_EQ(with_cic.total_delivered(), 2u);
}

TEST(Cic, BoundedResolvability) {
  // Five overlapping same-channel packets exceed max_resolvable=3: CIC
  // leaves them collided.
  Deployment deployment{Region{Meters{600.0}, Meters{600.0}}, spectrum_1m6(), quiet_channel()};
  auto& network = deployment.add_network("op");
  auto& gw = network.add_gateway(1, deployment.region().center(),
                                 default_profile());
  gw.apply_channels(GatewayChannelConfig{
      standard_plan(deployment.spectrum(), 0).channels});
  NodeRadioConfig cfg;
  cfg.channel = deployment.spectrum().grid_channel(0);
  cfg.dr = DataRate::kDR3;
  std::vector<EndNode*> nodes;
  // Equidistant ring: no capture winner, a genuine 5-way collision.
  const Point ring[5] = {Point{Meters{330}, Meters{300}},
                         Point{Meters{309}, Meters{329}},
                         Point{Meters{276}, Meters{318}},
                         Point{Meters{276}, Meters{282}},
                         Point{Meters{309}, Meters{271}}};
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(
        &network.add_node(static_cast<NodeId>(i + 1), ring[i], cfg));
  }
  PacketIdSource ids;
  RunOptions cic_options;
  cic_options.capture_policy = std::make_shared<CicCapturePolicy>();
  ScenarioRunner runner(deployment, 7, std::move(cic_options));
  const auto result = runner.run_window(concurrent_burst(nodes, Seconds{0.0}, ids));
  EXPECT_EQ(result.total_delivered(), 0u);
}

// ---- deprecated shim pinning ----------------------------------------------
// The free functions are [[deprecated]] shims over the policy objects and
// must stay bit-identical to them until removed. The attribute itself is
// pinned by tests/compile_fail/deprecated_baseline_shims.cpp; these tests
// pin the behaviour.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(DeprecatedShims, StandardLorawanShimMatchesPolicy) {
  BaselineFixture shim_f, policy_f;
  apply_standard_lorawan(shim_f.deployment, *shim_f.network, shim_f.rng);
  StandardLorawanPolicy().configure(policy_f.deployment, *policy_f.network,
                                    policy_f.rng);
  const auto& a = shim_f.network->nodes();
  const auto& b = policy_f.network->nodes();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].config().channel.center.value(),
              b[i].config().channel.center.value());
    EXPECT_EQ(a[i].config().dr, b[i].config().dr);
  }
  ASSERT_EQ(shim_f.network->gateways().size(),
            policy_f.network->gateways().size());
  for (std::size_t i = 0; i < shim_f.network->gateways().size(); ++i) {
    EXPECT_EQ(shim_f.network->gateways()[i].channels(),
              policy_f.network->gateways()[i].channels());
  }
}

TEST(DeprecatedShims, RandomCpShimMatchesPolicy) {
  BaselineFixture shim_f, policy_f;
  apply_random_cp(shim_f.deployment, *shim_f.network, shim_f.rng);
  RandomCpPolicy().configure(policy_f.deployment, *policy_f.network,
                             policy_f.rng);
  ASSERT_EQ(shim_f.network->gateways().size(),
            policy_f.network->gateways().size());
  for (std::size_t i = 0; i < shim_f.network->gateways().size(); ++i) {
    EXPECT_EQ(shim_f.network->gateways()[i].channels(),
              policy_f.network->gateways()[i].channels());
  }
  const auto& a = shim_f.network->nodes();
  const auto& b = policy_f.network->nodes();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].config().channel.center.value(),
              b[i].config().channel.center.value());
  }
}

TEST(DeprecatedShims, LmacShimMatchesPolicy) {
  BaselineFixture f;
  std::vector<EndNode*> nodes;
  NodeRadioConfig cfg;
  cfg.channel = f.deployment.spectrum().grid_channel(0);
  cfg.dr = DataRate::kDR4;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(&f.network->add_node(
        f.deployment.next_node_id(),
        Point{Meters{400.0 + 20.0 * i}, Meters{500.0}}, cfg));
  }
  PacketIdSource ids;
  const auto txs = concurrent_burst(nodes, Seconds{0.0}, ids);
  Rng shim_rng(11), policy_rng(11);
  const auto via_shim = lmac_schedule(txs, shim_rng);
  const auto via_policy = LmacPolicy().shape_window(txs, policy_rng);
  ASSERT_EQ(via_shim.size(), via_policy.size());
  for (std::size_t i = 0; i < via_shim.size(); ++i) {
    EXPECT_EQ(via_shim[i].id, via_policy[i].id);
    EXPECT_DOUBLE_EQ(via_shim[i].start.value(), via_policy[i].start.value());
  }
}

TEST(DeprecatedShims, CicProcessorShimMatchesCapturePolicy) {
  // Same two-packet collision world as Cic.ResolvesSmallCollisions, once
  // through the deprecated RxPostProcessor shim and once through
  // RunOptions::capture_policy: identical delivered counts.
  for (const bool use_shim : {true, false}) {
    Deployment deployment{Region{Meters{600.0}, Meters{600.0}},
                          spectrum_1m6(), quiet_channel()};
    auto& network = deployment.add_network("op");
    auto& gw = network.add_gateway(1, deployment.region().center(),
                                   default_profile());
    gw.apply_channels(GatewayChannelConfig{
        standard_plan(deployment.spectrum(), 0).channels});
    NodeRadioConfig cfg;
    cfg.channel = deployment.spectrum().grid_channel(0);
    cfg.dr = DataRate::kDR3;
    auto& n1 = network.add_node(1, Point{Meters{300}, Meters{310}}, cfg);
    auto& n2 = network.add_node(2, Point{Meters{310}, Meters{300}}, cfg);
    PacketIdSource ids;
    RunOptions options;
    if (use_shim) {
      options.post_processor = make_cic_processor();
    } else {
      options.capture_policy = std::make_shared<CicCapturePolicy>();
    }
    ScenarioRunner runner(deployment, 7, std::move(options));
    const std::vector<Transmission> txs = {
        n1.make_transmission(Seconds{0.0}, 10, ids.next()),
        n2.make_transmission(Seconds{0.0}, 10, ids.next())};
    EXPECT_EQ(runner.run_window(txs).total_delivered(), 2u)
        << (use_shim ? "shim" : "capture policy");
  }
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace alphawan
