// On-air transmission descriptor shared by the radio model and the
// simulator, plus the per-gateway reception outcome taxonomy.
#pragma once

#include <cstdint>

#include "common/geometry.hpp"
#include "phy/airtime.hpp"
#include "phy/band_plan.hpp"
#include "phy/lora_params.hpp"

namespace alphawan {

// One uplink transmission as it exists in the air. Times are absolute
// simulation seconds.
struct Transmission {
  PacketId id = 0;
  NodeId node = kInvalidNode;
  NetworkId network = 0;
  std::uint16_t sync_word = 0x34;  // LoRaWAN public sync word
  Channel channel{};
  TxParams params{};
  std::uint32_t payload_bytes = 10;  // paper uses 10-byte payloads
  Dbm tx_power{14.0};
  Point origin{};  // transmitter position (for propagation)
  Seconds start{0.0};

  // End of preamble: the instant a gateway locks on and a decoder is
  // claimed (paper Sec. 3.1).
  [[nodiscard]] Seconds lock_on() const {
    return start + preamble_duration(params);
  }
  [[nodiscard]] Seconds end() const {
    return start + time_on_air(params, payload_bytes);
  }
  [[nodiscard]] bool overlaps_in_time(const Transmission& other) const {
    return start < other.end() && other.start < end();
  }
};

// What happened to one packet at one gateway.
enum class RxDisposition : std::uint8_t {
  // Success: decoded and destined to this gateway's network.
  kDelivered,
  // Decoded fine, but the sync word revealed a foreign network; the packet
  // consumed a decoder for its full duration and was then discarded
  // (paper Sec. 3.1, Figs. 3e/3f).
  kDecodedForeign,
  // Preamble detected, but every decoder was busy at lock-on time: the
  // decoder contention drop.
  kDroppedDecoderBusy,
  // A decoder was assigned but interference corrupted the payload
  // (channel contention).
  kDroppedCollision,
  // Detected and decoded started but SNR below the demodulation threshold.
  kDroppedLowSnr,
  // Preamble never detected: signal below sensitivity at this gateway.
  kNotDetected,
  // Front-end truncated the packet: its channel is misaligned with every
  // operating channel of this gateway (Strategy 8 isolation). No decoder
  // was consumed.
  kRejectedFrontEnd,
};

[[nodiscard]] constexpr bool consumed_decoder(RxDisposition d) {
  return d == RxDisposition::kDelivered || d == RxDisposition::kDecodedForeign ||
         d == RxDisposition::kDroppedCollision ||
         d == RxDisposition::kDroppedLowSnr;
}

// A transmission as seen by one gateway's front-end.
struct RxEvent {
  Transmission tx{};
  Dbm rx_power{-200.0};  // received signal power at this gateway
};

struct RxOutcome {
  PacketId packet = 0;
  NodeId node = kInvalidNode;
  NetworkId network = 0;
  RxDisposition disposition = RxDisposition::kNotDetected;
  // For kDroppedDecoderBusy: true if at least one decoder was occupied by a
  // foreign-network packet at the drop instant (inter-network contention).
  bool foreign_among_occupants = false;
  // For kDroppedCollision: true if the fatal interferer was foreign.
  bool foreign_interferer = false;
  // SNR at this gateway (for diagnostics and ADR input).
  Db snr{-200.0};
  // Index of the gateway operating channel the packet was taken on
  // (-1 when not detected / rejected).
  int chain_channel = -1;
};

}  // namespace alphawan
