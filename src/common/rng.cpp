#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace alphawan {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) { reseed(seed); }

Rng::Rng(const Rng& other) : state_(other.state_), seed_(other.seed_) {}

Rng& Rng::operator=(const Rng& other) {
  state_ = other.state_;
  seed_ = other.seed_;
  cached_normal_ = 0.0;
  has_cached_normal_ = false;
  return *this;
}

void Rng::reseed(std::uint64_t seed) {
  seed_ = seed;
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
  cached_normal_ = 0.0;
  has_cached_normal_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  // Rejection-free modulo bias is negligible for our span sizes, but use
  // Lemire's multiply-shift reduction anyway.
  const unsigned __int128 product =
      static_cast<unsigned __int128>(next()) * span;
  return lo + static_cast<std::int64_t>(product >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / rate;
}

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng(next()); }

Rng Rng::substream(std::string_view name) const {
  // FNV-1a over the name, then one SplitMix64 round against the root seed.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return substream(h);
}

Rng Rng::substream(std::uint64_t a, std::uint64_t b) const {
  std::uint64_t s = seed_;
  std::uint64_t mixed = splitmix64(s) ^ a;
  mixed = splitmix64(mixed) ^ b;
  return Rng(splitmix64(mixed));
}

}  // namespace alphawan
