#include "core/cp_solution.hpp"

#include <cstdio>

namespace alphawan {

Dbm level_tx_power(int level) {
  // Shorter levels can afford lower power; longer levels use the ladder's
  // upper rungs. Level 0 (DR5, short) -> 8 dBm ... level 5 (DR0) -> 14 dBm.
  static constexpr Dbm kPower[kNumLevels] = {Dbm{8.0},  Dbm{8.0},  Dbm{11.0},
                                             Dbm{11.0}, Dbm{14.0}, Dbm{14.0}};
  if (level < 0 || level >= kNumLevels) return kDefaultTxPower;
  return kPower[level];
}

NetworkChannelConfig to_network_config(const CpInstance& instance,
                                       const CpSolution& solution,
                                       Hz frequency_offset) {
  NetworkChannelConfig config;
  auto shifted = [&](int grid_index) {
    Channel ch = instance.spectrum.grid_channel(grid_index);
    ch.center += frequency_offset;
    return ch;
  };
  for (std::size_t j = 0; j < instance.gateways.size(); ++j) {
    GatewayChannelConfig gw_cfg;
    gw_cfg.channels.reserve(solution.gateway_channels[j].size());
    for (const auto c : solution.gateway_channels[j]) {
      gw_cfg.channels.push_back(shifted(c));
    }
    config.gateways[instance.gateways[j].id] = std::move(gw_cfg);
  }
  for (std::size_t i = 0; i < instance.nodes.size(); ++i) {
    NodeRadioConfig node_cfg;
    node_cfg.channel = shifted(solution.node_channel[i]);
    node_cfg.dr = level_to_dr(solution.node_level[i]);
    node_cfg.tx_power = level_tx_power(solution.node_level[i]);
    config.nodes[instance.nodes[i].id] = node_cfg;
  }
  return config;
}

std::string describe_solution(const CpInstance& instance,
                              const CpSolution& solution,
                              const CpEvaluation& eval) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line),
                "CP solution: objective=%.3f overload=%.3f pair=%.3f "
                "disconnected=%.3f\n",
                eval.objective, eval.overload_risk, eval.pair_overload,
                eval.disconnected);
  out += line;
  for (std::size_t j = 0; j < instance.gateways.size(); ++j) {
    std::snprintf(line, sizeof(line), "  GW %u load=%.1f/%d channels=[",
                  instance.gateways[j].id,
                  j < eval.gateway_load.size() ? eval.gateway_load[j] : 0.0,
                  instance.gateways[j].decoders);
    out += line;
    for (std::size_t k = 0; k < solution.gateway_channels[j].size(); ++k) {
      std::snprintf(line, sizeof(line), "%s%d", k ? "," : "",
                    solution.gateway_channels[j][k]);
      out += line;
    }
    out += "]\n";
  }
  return out;
}

}  // namespace alphawan
