#include "phy/sensitivity.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

TEST(Sensitivity, ThresholdsDecreaseWithSf) {
  for (int i = 0; i + 1 < kNumSpreadingFactors; ++i) {
    EXPECT_GT(demod_snr_threshold(sf_from_index(i)),
              demod_snr_threshold(sf_from_index(i + 1)));
  }
}

TEST(Sensitivity, KnownThresholds) {
  EXPECT_DOUBLE_EQ(demod_snr_threshold(SpreadingFactor::kSF7).value(), -7.5);
  EXPECT_DOUBLE_EQ(demod_snr_threshold(SpreadingFactor::kSF12).value(),
                   -20.0);
}

TEST(Sensitivity, SensitivityMatchesDatasheetBallpark) {
  // SX1276-class sensitivity at SF12/125k is around -137 dBm.
  const Dbm s = sensitivity_dbm(SpreadingFactor::kSF12, Hz{125e3});
  EXPECT_LT(s, Dbm{-130.0});
  EXPECT_GT(s, Dbm{-142.0});
}

TEST(Sensitivity, BestDataRatePicksFastestFeasible) {
  // SNR 0 dB clears every threshold: DR5 expected.
  EXPECT_EQ(best_data_rate_for_snr(Db{0.0}), DataRate::kDR5);
  // -11 dB: SF9 (-12.5) ok but SF8 (-10) not -> DR3.
  EXPECT_EQ(best_data_rate_for_snr(Db{-11.0}), DataRate::kDR3);
  // -19 dB: only SF12 -> DR0.
  EXPECT_EQ(best_data_rate_for_snr(Db{-19.0}), DataRate::kDR0);
}

TEST(Sensitivity, BestDataRateRespectsMargin) {
  // -6 with margin 3 must fail SF7 (-7.5+3 = -4.5) -> falls to DR4.
  EXPECT_EQ(best_data_rate_for_snr(Db{-6.0}, Db{3.0}), DataRate::kDR4);
}

TEST(Sensitivity, BestDataRateNulloptBelowSf12) {
  EXPECT_FALSE(best_data_rate_for_snr(Db{-25.0}).has_value());
}

TEST(Sensitivity, RangeLevelsMonotone) {
  const auto& levels = range_levels();
  for (std::size_t i = 0; i + 1 < levels.size(); ++i) {
    EXPECT_LT(levels[i].typical_range, levels[i + 1].typical_range);
  }
  // Level 0 is the fastest data rate; the last is DR0.
  EXPECT_EQ(levels.front().dr, DataRate::kDR5);
  EXPECT_EQ(levels.back().dr, DataRate::kDR0);
}

TEST(Sensitivity, DrSfMappingRoundTrips) {
  for (const auto dr : kAllDataRates) {
    EXPECT_EQ(sf_to_dr(dr_to_sf(dr)), dr);
  }
  for (const auto sf : kAllSpreadingFactors) {
    EXPECT_EQ(dr_to_sf(sf_to_dr(sf)), sf);
  }
}

TEST(Sensitivity, NoiseFloor125k) {
  EXPECT_NEAR(noise_floor_dbm(kLoRaBandwidth125k).value(), -117.0, 0.1);
}

}  // namespace
}  // namespace alphawan
