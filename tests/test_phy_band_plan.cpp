#include "phy/band_plan.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

TEST(BandPlan, GridSizeMatchesSpectrum) {
  EXPECT_EQ(spectrum_1m6().grid_size(), 8);
  EXPECT_EQ(spectrum_4m8().grid_size(), 24);
  EXPECT_EQ(spectrum_6m4().grid_size(), 32);
}

TEST(BandPlan, GridCentersSpacedCorrectly) {
  const Spectrum s = spectrum_4m8();
  EXPECT_DOUBLE_EQ(s.grid_center(0).value(), s.base.value() + 100e3);
  EXPECT_DOUBLE_EQ((s.grid_center(1) - s.grid_center(0)).value(),
                   kChannelSpacing.value());
}

TEST(BandPlan, GridChannelsInsideSpectrum) {
  const Spectrum s = spectrum_4m8();
  for (const auto& ch : s.grid_channels()) {
    EXPECT_TRUE(s.contains(ch));
  }
}

TEST(BandPlan, NearestGridIndexRoundTrips) {
  const Spectrum s = spectrum_4m8();
  for (int i = 0; i < s.grid_size(); ++i) {
    EXPECT_EQ(s.nearest_grid_index(s.grid_center(i)), i);
    // Slightly offset (misaligned) channels still map to the grid index.
    EXPECT_EQ(s.nearest_grid_index(s.grid_center(i) + Hz{40e3}), i);
  }
}

TEST(BandPlan, StandardPlanHasEightChannels) {
  const Spectrum s = spectrum_4m8();
  for (int p = 0; p < num_standard_plans(s); ++p) {
    const auto plan = standard_plan(s, p);
    EXPECT_EQ(plan.size(), 8u);
    EXPECT_LE(plan.span(), Hz{1.6e6 + 1.0});
  }
}

TEST(BandPlan, StandardPlansPartitionSpectrum) {
  const Spectrum s = spectrum_4m8();
  EXPECT_EQ(num_standard_plans(s), 3);
  const auto p0 = standard_plan(s, 0);
  const auto p1 = standard_plan(s, 1);
  EXPECT_LT(p0.channels.back().center, p1.channels.front().center);
}

TEST(BandPlan, StandardPlanOutOfRangeThrows) {
  const Spectrum s = spectrum_1m6();
  EXPECT_NO_THROW(standard_plan(s, 0));
  EXPECT_THROW(standard_plan(s, 1), std::out_of_range);
  EXPECT_THROW(standard_plan(s, -1), std::out_of_range);
}

TEST(BandPlan, OracleCapacity) {
  // 8 channels x 6 SFs = 48 in 1.6 MHz; 24 x 6 = 144 in 4.8 MHz — the
  // theoretical bounds quoted throughout the paper.
  EXPECT_EQ(oracle_capacity(spectrum_1m6()), 48);
  EXPECT_EQ(oracle_capacity(spectrum_4m8()), 144);
}

TEST(BandPlan, ChannelEdges) {
  Channel ch{Hz{915e6}, Hz{125e3}};
  EXPECT_DOUBLE_EQ(ch.low().value(), 915e6 - 62.5e3);
  EXPECT_DOUBLE_EQ(ch.high().value(), 915e6 + 62.5e3);
}

TEST(BandPlan, EmptyPlanSpanZero) {
  ChannelPlan plan;
  EXPECT_DOUBLE_EQ(plan.span().value(), 0.0);
}

TEST(BandPlan, PlanSpanCoversOuterEdges) {
  ChannelPlan plan;
  plan.channels = {Channel{Hz{915.0e6}, Hz{125e3}},
                   Channel{Hz{915.4e6}, Hz{125e3}}};
  EXPECT_DOUBLE_EQ(plan.span().value(), 0.4e6 + 125e3);
}

}  // namespace
}  // namespace alphawan
