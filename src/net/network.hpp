// A complete LoRaWAN network: one operator's server, gateways, and
// subscribed end nodes, plus channel-plan application.
#pragma once

#include <deque>
#include <string>

#include "net/adr.hpp"
#include "net/end_node.hpp"
#include "net/gateway.hpp"
#include "net/network_server.hpp"
#include "net/sync_word.hpp"

namespace alphawan {

class Network {
 public:
  Network(NetworkId id, std::string name);

  [[nodiscard]] NetworkId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint16_t sync_word() const { return sync_word_; }

  Gateway& add_gateway(GatewayId id, Point position,
                       const GatewayProfile& profile);
  EndNode& add_node(NodeId id, Point position, const NodeRadioConfig& config);

  // Devices live in deques so references returned by add_gateway/add_node
  // remain valid as the network grows.
  [[nodiscard]] std::deque<Gateway>& gateways() { return gateways_; }
  [[nodiscard]] const std::deque<Gateway>& gateways() const {
    return gateways_;
  }
  [[nodiscard]] std::deque<EndNode>& nodes() { return nodes_; }
  [[nodiscard]] const std::deque<EndNode>& nodes() const { return nodes_; }
  [[nodiscard]] NetworkServer& server() { return server_; }
  [[nodiscard]] const NetworkServer& server() const { return server_; }

  [[nodiscard]] Gateway* find_gateway(GatewayId id);
  [[nodiscard]] EndNode* find_node(NodeId id);
  [[nodiscard]] const Gateway* find_gateway(GatewayId id) const;
  [[nodiscard]] const EndNode* find_node(NodeId id) const;

  // Apply a channel plan: reconfigure listed gateways and nodes. Entries
  // for unknown ids are ignored (they may belong to removed devices).
  void apply_config(const NetworkChannelConfig& config);

  // Snapshot of the currently applied configuration.
  [[nodiscard]] NetworkChannelConfig current_config() const;

 private:
  NetworkId id_;
  std::string name_;
  std::uint16_t sync_word_;
  NetworkServer server_;
  std::deque<Gateway> gateways_;
  std::deque<EndNode> nodes_;
};

}  // namespace alphawan
