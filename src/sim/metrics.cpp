#include "sim/metrics.hpp"

#include <algorithm>

namespace alphawan {

std::string_view loss_cause_name(LossCause cause) {
  switch (cause) {
    case LossCause::kDelivered: return "delivered";
    case LossCause::kDecoderContentionIntra: return "decoder-contention-intra";
    case LossCause::kDecoderContentionInter: return "decoder-contention-inter";
    case LossCause::kChannelContentionIntra: return "channel-contention-intra";
    case LossCause::kChannelContentionInter: return "channel-contention-inter";
    case LossCause::kOther: return "other";
  }
  return "?";
}

MetricsCollector::PerNetwork& MetricsCollector::slot(NetworkId network) {
  for (auto& net : per_network_) {
    if (net.id == network) return net;
  }
  per_network_.emplace_back();
  per_network_.back().id = network;
  return per_network_.back();
}

const MetricsCollector::PerNetwork* MetricsCollector::find(
    NetworkId network) const {
  for (const auto& net : per_network_) {
    if (net.id == network) return &net;
  }
  return nullptr;
}

namespace {
// Fold the tail once it outgrows a quarter of the base (but let small
// tails batch up): keeps the amortized per-delivery cost logarithmic
// while the resident set stays exactly the distinct nodes.
constexpr std::size_t kServedFoldMin = 64;
}  // namespace

void MetricsCollector::fold_served(const PerNetwork& net) {
  if (net.served_tail.empty()) return;
  std::sort(net.served_tail.begin(), net.served_tail.end());
  const auto mid = static_cast<std::ptrdiff_t>(net.served_sorted.size());
  net.served_sorted.insert(net.served_sorted.end(), net.served_tail.begin(),
                           net.served_tail.end());
  std::inplace_merge(net.served_sorted.begin(),
                     net.served_sorted.begin() + mid, net.served_sorted.end());
  net.served_sorted.erase(
      std::unique(net.served_sorted.begin(), net.served_sorted.end()),
      net.served_sorted.end());
  net.served_tail.clear();
}

void MetricsCollector::record(const PacketFate& fate) {
  if (history_limit_ > 0) {
    if (ring_.size() < history_limit_) {
      ring_.push_back(fate);
    } else {
      ring_[ring_head_] = fate;
      ring_head_ = (ring_head_ + 1) % history_limit_;
      ++evicted_;
    }
  } else {
    ++evicted_;
  }
  auto& net = slot(fate.network);
  ++net.offered;
  ++total_offered_;
  if (fate.delivered) {
    ++net.delivered;
    ++total_delivered_;
    net.delivered_bytes += fate.payload_bytes;
    total_delivered_bytes_ += fate.payload_bytes;
    ++delivered_by_dr_[static_cast<std::size_t>(dr_value(fate.dr))];
    net.served_tail.push_back(fate.node);
    if (net.served_tail.size() >=
        std::max(kServedFoldMin, net.served_sorted.size() / 4)) {
      fold_served(net);
    }
  } else {
    net.causes.add(fate.cause);
    total_causes_.add(fate.cause);
  }
}

std::size_t MetricsCollector::offered(NetworkId network) const {
  const PerNetwork* net = find(network);
  return net == nullptr ? 0 : net->offered;
}

std::size_t MetricsCollector::delivered(NetworkId network) const {
  const PerNetwork* net = find(network);
  return net == nullptr ? 0 : net->delivered;
}

double MetricsCollector::prr(NetworkId network) const {
  const std::size_t off = offered(network);
  return off == 0 ? 0.0
                  : static_cast<double>(delivered(network)) /
                        static_cast<double>(off);
}

double MetricsCollector::total_prr() const {
  return total_offered_ == 0 ? 0.0
                             : static_cast<double>(total_delivered_) /
                                   static_cast<double>(total_offered_);
}

double MetricsCollector::loss_fraction(LossCause cause) const {
  return total_offered_ == 0
             ? 0.0
             : static_cast<double>(total_causes_.get(cause)) /
                   static_cast<double>(total_offered_);
}

double MetricsCollector::loss_fraction(NetworkId network,
                                       LossCause cause) const {
  const PerNetwork* net = find(network);
  if (net == nullptr || net->offered == 0) return 0.0;
  return static_cast<double>(net->causes.get(cause)) /
         static_cast<double>(net->offered);
}

std::size_t MetricsCollector::losses(NetworkId network, LossCause cause) const {
  const PerNetwork* net = find(network);
  return net == nullptr ? 0 : net->causes.get(cause);
}

std::vector<NetworkId> MetricsCollector::networks() const {
  std::vector<NetworkId> ids;
  ids.reserve(per_network_.size());
  for (const auto& net : per_network_) ids.push_back(net.id);
  std::sort(ids.begin(), ids.end());  // map-era callers expect ascending ids
  return ids;
}

std::size_t MetricsCollector::delivered_bytes(NetworkId network) const {
  const PerNetwork* net = find(network);
  return net == nullptr ? 0 : net->delivered_bytes;
}

std::size_t MetricsCollector::served_nodes(NetworkId network) const {
  const PerNetwork* net = find(network);
  if (net == nullptr) return 0;
  fold_served(*net);
  return net->served_sorted.size();
}

std::size_t MetricsCollector::total_served_nodes() const {
  std::size_t total = 0;
  for (const auto& net : per_network_) {
    fold_served(net);
    total += net.served_sorted.size();
  }
  return total;
}

std::vector<PacketFate> MetricsCollector::recent_fates() const {
  std::vector<PacketFate> fates;
  fates.reserve(ring_.size());
  // Oldest first: the ring is filled linearly until the limit, after which
  // ring_head_ marks the oldest slot.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    fates.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return fates;
}

void MetricsCollector::clear() { *this = MetricsCollector{history_limit_}; }

}  // namespace alphawan
