#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/scenario.hpp"
#include "sim/traffic.hpp"

namespace alphawan {
namespace {

Transmission tx_of(PacketId id, NetworkId network = 0) {
  Transmission tx;
  tx.id = id;
  tx.node = static_cast<NodeId>(id * 10);
  tx.network = network;
  tx.payload_bytes = 10;
  return tx;
}

RxOutcome outcome(RxDisposition d, bool foreign_occ = false,
                  bool foreign_intf = false) {
  RxOutcome o;
  o.disposition = d;
  o.foreign_among_occupants = foreign_occ;
  o.foreign_interferer = foreign_intf;
  return o;
}

TEST(Classify, DeliveredWinsOverEverything) {
  const auto fate = classify_packet(
      tx_of(1), {outcome(RxDisposition::kDroppedDecoderBusy),
                 outcome(RxDisposition::kDelivered),
                 outcome(RxDisposition::kDroppedCollision)});
  EXPECT_TRUE(fate.delivered);
  EXPECT_EQ(fate.cause, LossCause::kDelivered);
}

TEST(Classify, DecoderBeatsCollision) {
  const auto fate = classify_packet(
      tx_of(1), {outcome(RxDisposition::kDroppedCollision),
                 outcome(RxDisposition::kDroppedDecoderBusy)});
  EXPECT_FALSE(fate.delivered);
  EXPECT_EQ(fate.cause, LossCause::kDecoderContentionIntra);
}

TEST(Classify, ForeignOccupantsMakeItInterNetwork) {
  const auto fate = classify_packet(
      tx_of(1),
      {outcome(RxDisposition::kDroppedDecoderBusy, /*foreign=*/true)});
  EXPECT_EQ(fate.cause, LossCause::kDecoderContentionInter);
}

TEST(Classify, CollisionInterVsIntra) {
  EXPECT_EQ(classify_packet(tx_of(1),
                            {outcome(RxDisposition::kDroppedCollision, false,
                                     /*foreign_intf=*/true)})
                .cause,
            LossCause::kChannelContentionInter);
  EXPECT_EQ(classify_packet(tx_of(1),
                            {outcome(RxDisposition::kDroppedCollision)})
                .cause,
            LossCause::kChannelContentionIntra);
}

TEST(Classify, NoGatewaysMeansOther) {
  const auto fate = classify_packet(tx_of(1), {});
  EXPECT_FALSE(fate.delivered);
  EXPECT_EQ(fate.cause, LossCause::kOther);
}

TEST(Classify, LowSnrIsOther) {
  EXPECT_EQ(
      classify_packet(tx_of(1), {outcome(RxDisposition::kNotDetected),
                                 outcome(RxDisposition::kDroppedLowSnr)})
          .cause,
      LossCause::kOther);
}

TEST(Collector, PrrAndLossFractionsSumToOne) {
  MetricsCollector m;
  PacketFate delivered;
  delivered.network = 0;
  delivered.delivered = true;
  delivered.cause = LossCause::kDelivered;
  delivered.payload_bytes = 10;
  PacketFate lost = delivered;
  lost.delivered = false;
  lost.cause = LossCause::kDecoderContentionIntra;

  for (int i = 0; i < 7; ++i) {
    delivered.packet = static_cast<PacketId>(i);
    delivered.node = static_cast<NodeId>(i);
    m.record(delivered);
  }
  for (int i = 0; i < 3; ++i) {
    lost.packet = static_cast<PacketId>(100 + i);
    m.record(lost);
  }
  EXPECT_DOUBLE_EQ(m.total_prr(), 0.7);
  EXPECT_DOUBLE_EQ(m.loss_fraction(LossCause::kDecoderContentionIntra), 0.3);
  EXPECT_DOUBLE_EQ(m.total_prr() +
                       m.loss_fraction(LossCause::kDecoderContentionIntra),
                   1.0);
  EXPECT_EQ(m.total_delivered_bytes(), 70u);
  EXPECT_EQ(m.served_nodes(0), 7u);
}

TEST(Collector, PerNetworkSeparation) {
  MetricsCollector m;
  PacketFate f;
  f.delivered = true;
  f.cause = LossCause::kDelivered;
  f.network = 1;
  f.packet = 1;
  f.node = 1;
  m.record(f);
  f.network = 2;
  f.delivered = false;
  f.cause = LossCause::kChannelContentionInter;
  f.packet = 2;
  m.record(f);
  EXPECT_DOUBLE_EQ(m.prr(1), 1.0);
  EXPECT_DOUBLE_EQ(m.prr(2), 0.0);
  EXPECT_DOUBLE_EQ(m.loss_fraction(2, LossCause::kChannelContentionInter),
                   1.0);
  EXPECT_DOUBLE_EQ(m.loss_fraction(1, LossCause::kChannelContentionInter),
                   0.0);
  EXPECT_EQ(m.total_offered(), 2u);
}

TEST(Collector, EmptyCollectorSafe) {
  MetricsCollector m;
  EXPECT_DOUBLE_EQ(m.total_prr(), 0.0);
  EXPECT_DOUBLE_EQ(m.prr(9), 0.0);
  EXPECT_EQ(m.total_served_nodes(), 0u);
}

TEST(Collector, ClearResets) {
  MetricsCollector m;
  PacketFate f;
  f.delivered = true;
  m.record(f);
  m.clear();
  EXPECT_EQ(m.total_offered(), 0u);
}

// ---- streaming aggregation ------------------------------------------------

PacketFate synth_fate(int i) {
  PacketFate f;
  f.packet = static_cast<PacketId>(i);
  f.node = static_cast<NodeId>(i % 17);  // repeats, to exercise dedup
  f.network = static_cast<NetworkId>(i % 3);
  f.dr = static_cast<DataRate>(i % kNumDataRates);
  f.payload_bytes = static_cast<std::uint32_t>(1 + i % 5);
  if (i % 4 == 0) {
    f.delivered = false;
    f.cause = static_cast<LossCause>(1 + i % 5);
  } else {
    f.delivered = true;
    f.cause = LossCause::kDelivered;
  }
  return f;
}

// Reference totals computed the pre-streaming way: from the complete flat
// fate history.
struct FlatTotals {
  std::size_t offered = 0;
  std::size_t delivered = 0;
  std::size_t bytes = 0;
  std::map<NetworkId, std::size_t> net_delivered;
  std::map<NetworkId, std::set<NodeId>> served;
  std::map<DataRate, std::size_t> by_dr;

  void add(const PacketFate& f) {
    ++offered;
    if (!f.delivered) return;
    ++delivered;
    bytes += f.payload_bytes;
    ++net_delivered[f.network];
    served[f.network].insert(f.node);
    ++by_dr[f.dr];
  }
};

TEST(StreamingCollector, RollingAggregatesEqualFlatHistoryTotals) {
  MetricsCollector rolling(/*history_limit=*/16);  // far below the stream
  FlatTotals flat;
  for (int i = 0; i < 1000; ++i) {
    const PacketFate f = synth_fate(i);
    rolling.record(f);
    flat.add(f);
  }
  EXPECT_EQ(rolling.total_offered(), flat.offered);
  EXPECT_EQ(rolling.total_delivered(), flat.delivered);
  EXPECT_EQ(rolling.total_delivered_bytes(), flat.bytes);
  for (const auto& [net, count] : flat.net_delivered) {
    EXPECT_EQ(rolling.delivered(net), count) << "network " << net;
  }
  for (const DataRate dr : kAllDataRates) {
    const auto it = flat.by_dr.find(dr);
    EXPECT_EQ(rolling.delivered_by_dr(dr),
              it == flat.by_dr.end() ? 0u : it->second);
  }
}

TEST(StreamingCollector, EvictionNeverDropsLiveState) {
  MetricsCollector m(/*history_limit=*/4);
  FlatTotals flat;
  for (int i = 0; i < 300; ++i) {
    const PacketFate f = synth_fate(i);
    m.record(f);
    flat.add(f);
  }
  // The ring evicted nearly everything...
  EXPECT_EQ(m.history_size(), 4u);
  EXPECT_EQ(m.evicted(), 296u);
  // ...yet every live aggregate is still exact, including the deduplicated
  // served-node sets whose members were recorded long before eviction.
  EXPECT_EQ(m.total_offered(), flat.offered);
  EXPECT_EQ(m.total_delivered(), flat.delivered);
  for (const auto& [net, nodes] : flat.served) {
    EXPECT_EQ(m.served_nodes(net), nodes.size()) << "network " << net;
  }
  std::size_t flat_served = 0;
  for (const auto& [net, nodes] : flat.served) flat_served += nodes.size();
  EXPECT_EQ(m.total_served_nodes(), flat_served);
}

TEST(StreamingCollector, RecentFatesAreTheNewestOldestFirst) {
  MetricsCollector m(/*history_limit=*/8);
  for (int i = 0; i < 20; ++i) m.record(synth_fate(i));
  const auto recent = m.recent_fates();
  ASSERT_EQ(recent.size(), 8u);
  for (std::size_t k = 0; k < recent.size(); ++k) {
    EXPECT_EQ(recent[k].packet, static_cast<PacketId>(12 + k));
  }
  EXPECT_EQ(m.evicted(), 12u);
}

TEST(StreamingCollector, ZeroLimitKeepsNoHistoryButExactAggregates) {
  MetricsCollector m(/*history_limit=*/0);
  for (int i = 0; i < 50; ++i) m.record(synth_fate(i));
  EXPECT_EQ(m.history_size(), 0u);
  EXPECT_TRUE(m.recent_fates().empty());
  EXPECT_EQ(m.evicted(), 50u);
  EXPECT_EQ(m.total_offered(), 50u);
}

TEST(StreamingCollector, ServedDedupSurvivesFoldBoundaries) {
  MetricsCollector m;
  PacketFate f;
  f.delivered = true;
  f.cause = LossCause::kDelivered;
  f.network = 0;
  // 500 deliveries from only 5 distinct nodes: crosses the fold threshold
  // many times over.
  for (int i = 0; i < 500; ++i) {
    f.packet = static_cast<PacketId>(i);
    f.node = static_cast<NodeId>(i % 5);
    m.record(f);
  }
  EXPECT_EQ(m.served_nodes(0), 5u);
  EXPECT_EQ(m.total_served_nodes(), 5u);
}

TEST(StreamingCollector, ScenarioWindowMatchesFlatRecompute) {
  // A golden-style scenario window: aggregates from the streaming collector
  // must equal a flat recompute over the window's complete fate stream.
  Deployment deployment{Region{Meters{800.0}, Meters{800.0}}, spectrum_1m6()};
  auto& network = deployment.add_network("op");
  auto& gw = network.add_gateway(deployment.next_gateway_id(),
                                 deployment.region().center(),
                                 default_profile());
  gw.apply_channels(GatewayChannelConfig{
      standard_plan(deployment.spectrum(), 0).channels});
  std::vector<EndNode*> nodes;
  for (int i = 0; i < 40; ++i) {
    NodeRadioConfig cfg;
    cfg.channel = deployment.spectrum().grid_channel(i % 8);
    cfg.dr = static_cast<DataRate>(i % 6);
    cfg.tx_power = Dbm{14.0};
    nodes.push_back(&network.add_node(
        deployment.next_node_id(),
        Point{Meters{300.0 + (i % 10) * 20.0}, Meters{350.0 + (i / 10) * 30.0}},
        cfg));
  }
  PacketIdSource ids;
  ScenarioRunner runner(deployment, /*seed=*/11);
  MetricsCollector metrics(/*history_limit=*/8);
  const auto result =
      runner.run_window(concurrent_burst(nodes, Seconds{0.0}, ids), metrics);
  FlatTotals flat;
  for (const auto& fate : result.fates) flat.add(fate);
  EXPECT_EQ(metrics.total_offered(), flat.offered);
  EXPECT_EQ(metrics.total_delivered(), flat.delivered);
  EXPECT_EQ(metrics.total_delivered_bytes(), flat.bytes);
  std::size_t flat_served = 0;
  for (const auto& [net, served] : flat.served) flat_served += served.size();
  EXPECT_EQ(metrics.total_served_nodes(), flat_served);
  for (const DataRate dr : kAllDataRates) {
    const auto it = flat.by_dr.find(dr);
    EXPECT_EQ(metrics.delivered_by_dr(dr),
              it == flat.by_dr.end() ? 0u : it->second);
  }
}

TEST(LossCauseNames, AllDistinct) {
  std::set<std::string_view> names;
  for (auto cause :
       {LossCause::kDelivered, LossCause::kDecoderContentionIntra,
        LossCause::kDecoderContentionInter, LossCause::kChannelContentionIntra,
        LossCause::kChannelContentionInter, LossCause::kOther}) {
    names.insert(loss_cause_name(cause));
  }
  EXPECT_EQ(names.size(), 6u);
}

}  // namespace
}  // namespace alphawan
