// Network-level channel configuration: the artifact AlphaWAN's planners
// produce and the LoRaWAN stack applies (gateway channel settings via the
// packet-forwarder config, node settings via ADR / NewChannelReq MAC
// commands).
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "phy/band_plan.hpp"
#include "phy/lora_params.hpp"
#include "phy/sensitivity.hpp"
#include "radio/profiles.hpp"

namespace alphawan {

// Radio settings assigned to one end node.
struct NodeRadioConfig {
  Channel channel{};
  DataRate dr = DataRate::kDR0;
  Dbm tx_power = kDefaultTxPower;

  friend bool operator==(const NodeRadioConfig&,
                         const NodeRadioConfig&) = default;
};

// Operating channels assigned to one gateway.
struct GatewayChannelConfig {
  std::vector<Channel> channels;

  friend bool operator==(const GatewayChannelConfig&,
                         const GatewayChannelConfig&) = default;
};

// Complete channel plan for one network.
struct NetworkChannelConfig {
  std::map<GatewayId, GatewayChannelConfig> gateways;
  std::map<NodeId, NodeRadioConfig> nodes;
};

// How much of a new configuration differs from the current one — drives
// the Fig. 17 latency model (each changed gateway reboots; each changed
// node receives a LinkADRReq downlink).
struct ConfigDelta {
  std::size_t gateways_changed = 0;
  std::size_t nodes_changed = 0;
};

[[nodiscard]] ConfigDelta diff_config(const NetworkChannelConfig& current,
                                      const NetworkChannelConfig& proposed);

// Validate a gateway channel assignment against a hardware profile
// (channel count <= Rx chains, span <= radio bandwidth). Returns false
// with no side effects rather than throwing — planners use this as a
// feasibility predicate.
[[nodiscard]] bool valid_for_profile(const GatewayChannelConfig& config,
                                     const GatewayProfile& profile);

// Build the standard-LoRaWAN homogeneous configuration: gateway j uses
// standard plan (j mod num_plans); nodes keep their current channels.
[[nodiscard]] NetworkChannelConfig homogeneous_standard_config(
    const Spectrum& spectrum, const std::vector<GatewayId>& gateways,
    bool spread_across_plans = true);

}  // namespace alphawan
