// A LoRaWAN end device: radio configuration, frame counter, session keys,
// duty-cycle accounting, and uplink generation.
#pragma once

#include <cstdint>

#include "common/geometry.hpp"
#include "net/channel_plan.hpp"
#include "net/crypto.hpp"
#include "net/frame.hpp"
#include "net/sync_word.hpp"
#include "radio/transmission.hpp"

namespace alphawan {

class EndNode {
 public:
  EndNode(NodeId id, NetworkId network, Point position, NodeRadioConfig config);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] NetworkId network() const { return network_; }
  [[nodiscard]] const Point& position() const { return position_; }
  [[nodiscard]] const NodeRadioConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t dev_addr() const { return dev_addr_; }
  [[nodiscard]] const SessionKeys& keys() const { return keys_; }
  [[nodiscard]] std::uint16_t fcnt() const { return fcnt_; }

  // Apply a new radio configuration (via ADR / AlphaWAN channel planning).
  void apply_config(const NodeRadioConfig& config) { config_ = config; }

  // Build the on-air transmission for an uplink starting at `start`.
  // Increments the frame counter and updates duty-cycle bookkeeping.
  [[nodiscard]] Transmission make_transmission(Seconds start,
                                               std::uint32_t payload_bytes,
                                               PacketId packet_id);

  // Encode a real PHYPayload for this node's next uplink (used by codec
  // tests and the quickstart example; the simulator tracks metadata only).
  [[nodiscard]] std::vector<std::uint8_t> encode_uplink(
      std::span<const std::uint8_t> app_payload);

  // Duty-cycle gate: earliest instant a new transmission may start, given
  // the regulatory duty-cycle limit (e.g. 0.01 for 1%).
  [[nodiscard]] Seconds next_allowed_start(double duty_cycle_limit) const;

  // TxParams for the node's current data rate.
  [[nodiscard]] TxParams tx_params() const;

 private:
  NodeId id_;
  NetworkId network_;
  Point position_;
  NodeRadioConfig config_;
  std::uint32_t dev_addr_;
  SessionKeys keys_{};
  std::uint16_t fcnt_ = 0;
  Seconds last_tx_end_{-1e18};
  Seconds last_tx_airtime_{0.0};
};

}  // namespace alphawan
