// Quickstart: the decoder contention problem in ~100 lines.
//
// Builds a single-operator deployment (5 gateways, 48 IoT nodes in
// 1.6 MHz), demonstrates the 16-packet ceiling of standard LoRaWAN, then
// runs AlphaWAN's intra-network channel planning and shows the capacity
// reaching the 48-user theoretical bound.
//
//   ./example_quickstart
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "baselines/standard_lorawan.hpp"
#include "core/controller.hpp"
#include "sim/scenario.hpp"
#include "sim/traffic.hpp"

using namespace alphawan;

namespace {

// Root seed for the whole demo; every draw derives from it.
constexpr std::uint64_t kRootSeed = 1;

std::size_t concurrent_capacity(Deployment& deployment,
                                std::vector<EndNode*> nodes, Seconds at,
                                PacketIdSource& ids) {
  ScenarioRunner runner(deployment, 7);
  const auto txs = staggered_by_lock_on(std::move(nodes), at, Seconds{0.0004}, ids);
  return runner.run_window(txs).total_delivered();
}

}  // namespace

int main() {
  // --- a 600 x 600 m site with quiet links (a controlled experiment) ----
  ChannelModelConfig quiet;
  quiet.shadowing_sigma_db = Db{0.3};
  quiet.fast_fading_sigma_db = Db{0.1};
  Deployment deployment{Region{Meters{600}, Meters{600}}, spectrum_1m6(), quiet};
  auto& network = deployment.add_network("quickstart-op");

  // Five colocated COTS gateways (WisGate-class: 8 channels, 16 decoders),
  // initially all on the standard 8-channel plan.
  const Point center = deployment.region().center();
  const auto plan0 = standard_plan(deployment.spectrum(), 0);
  for (int i = 0; i < 5; ++i) {
    auto& gw = network.add_gateway(deployment.next_gateway_id(),
                                   Point{Meters{center.x.value() + 15.0 * i}, center.y},
                                   default_profile());
    gw.apply_channels(GatewayChannelConfig{plan0.channels});
  }

  // 48 nodes on a ring, one per orthogonal (channel, SF) pair: the
  // theoretical maximum concurrency of 1.6 MHz. No RF collisions possible.
  std::vector<EndNode*> nodes;
  Rng rng(kRootSeed);
  const auto channels = deployment.spectrum().grid_channels();
  for (int i = 0; i < 48; ++i) {
    NodeRadioConfig cfg;
    cfg.channel = channels[i % 8];
    cfg.dr = static_cast<DataRate>(i / 8);
    const double angle = 2 * 3.14159265 * i / 48.0;
    nodes.push_back(&network.add_node(
        deployment.next_node_id(),
        Point{Meters{center.x.value() + 140 * std::cos(angle)},
              Meters{center.y.value() + 140 * std::sin(angle)}},
        cfg));
  }

  PacketIdSource ids;
  std::printf("AlphaWAN quickstart — 5 gateways, 48 users, 1.6 MHz\n\n");
  const auto before = concurrent_capacity(deployment, nodes, Seconds{0.0}, ids);
  std::printf("standard LoRaWAN (homogeneous plans): %zu / 48 concurrent "
              "packets received\n",
              before);
  std::printf("  -> every gateway locks onto the same first 16 preambles and\n"
              "     drops the rest: the decoder contention problem.\n\n");

  // --- AlphaWAN: intra-network channel planning -------------------------
  LatencyModel latency{LatencyModelConfig{}, 3};
  AlphaWanConfig config;
  config.strategy8_spectrum_sharing = false;  // single operator
  AlphaWanController controller(config, latency);
  const auto links = oracle_link_estimates(deployment, network);
  const auto report = controller.upgrade(
      network, deployment.spectrum(), links, uniform_traffic(network));
  std::printf("AlphaWAN capacity upgrade applied:\n");
  std::printf("  CP solve            %6.2f s (measured)\n", report.cp_solve.value());
  std::printf("  config distribution %6.2f s\n", report.config_distribution.value());
  std::printf("  gateway reboot      %6.2f s\n", report.gateway_reboot.value());
  std::printf("  gateways reconfigured: %zu, nodes steered: %zu\n\n",
              report.delta.gateways_changed, report.delta.nodes_changed);

  for (const auto& gw : network.gateways()) {
    std::printf("  gateway %u now operates %zu channel(s):", gw.id(),
                gw.channels().size());
    for (const auto& ch : gw.channels()) {
      std::printf(" %.1f", ch.center.value() / 1e6);
    }
    std::printf(" MHz\n");
  }

  const auto after = concurrent_capacity(deployment, nodes, Seconds{100.0}, ids);
  std::printf("\nAlphaWAN channel planning: %zu / 48 concurrent packets "
              "received (%.1fx)\n",
              after, static_cast<double>(after) / before);
  std::printf("  -> fewer channels per gateway concentrate its decoders\n"
              "     (Strategy 1) and heterogeneous plans let every gateway\n"
              "     capture a different slice of the spectrum (Strategy 2).\n");
  return 0;
}
