// Urban radio propagation: log-distance path loss with log-normal
// shadowing. Substitutes the paper's 2.1 km x 1.6 km urban testbed
// (outdoor/indoor/blockage mix) — see DESIGN.md section 2.
//
// Shadowing is frozen per (transmitter, receiver) pair at construction so a
// given deployment has stable link qualities across a run, matching how the
// paper's static testbed behaves, while fast fading is drawn per packet.
#pragma once

#include <shared_mutex>
#include <unordered_map>

#include "common/geometry.hpp"
#include "common/rng.hpp"
#include "phy/lora_params.hpp"

namespace alphawan {

struct ChannelModelConfig {
  // Log-distance parameters typical of dense urban 900 MHz measurements
  // (e.g. Rademacher et al., VTC'21 LoRa path loss study). With these
  // values and 14 dBm + 2 dBi, SF7 reaches ~600 m and SF12 ~1.4 km —
  // consistent with the paper's 2.1 km x 1.6 km urban testbed where all
  // six data rates are exercised (Fig. 11).
  double path_loss_exponent = 3.5;
  Db reference_loss_db{38.0};  // at 1 m
  Meters reference_distance{1.0};
  Db shadowing_sigma_db{4.0};  // per-link, frozen
  Db fast_fading_sigma_db{1.0};  // per-packet
  std::uint64_t seed = 1;
};

class ChannelModel {
 public:
  explicit ChannelModel(ChannelModelConfig config = {});

  // Deterministic mean path loss at a distance.
  [[nodiscard]] Db mean_path_loss(Meters dist) const;

  // Path loss including this link's frozen shadowing term. Links are keyed
  // by (tx_id, rx_id) chosen by the caller (node id, gateway id).
  [[nodiscard]] Db link_path_loss(std::uint64_t tx_id, std::uint64_t rx_id,
                                  Meters dist);

  // Received power for a transmission, with per-packet fast fading.
  [[nodiscard]] Dbm received_power(std::uint64_t tx_id, std::uint64_t rx_id,
                                   Meters dist, Dbm tx_power, Rng& packet_rng);

  // Mean SNR of a link (no fast fading) — what ADR and planners estimate
  // from history.
  [[nodiscard]] Db mean_link_snr(std::uint64_t tx_id, std::uint64_t rx_id,
                                 Meters dist, Dbm tx_power,
                                 Hz bandwidth = kLoRaBandwidth125k);

  // Distance at which mean SNR equals `snr` for the given tx power (inverse
  // of the deterministic model; ignores shadowing). Used to build the
  // discrete range table.
  [[nodiscard]] Meters range_for_snr(Db snr, Dbm tx_power,
                                     Hz bandwidth = kLoRaBandwidth125k) const;

  [[nodiscard]] const ChannelModelConfig& config() const { return config_; }

 private:
  [[nodiscard]] Db shadowing(std::uint64_t tx_id, std::uint64_t rx_id);

  ChannelModelConfig config_;
  std::uint64_t shadow_seed_;
  // The cache is safe to populate from concurrent gateway tasks
  // (sim/scenario.cpp): entries are pure functions of the key, so racing
  // fills compute the same value, and inserts are serialized below.
  std::shared_mutex shadow_mutex_;
  std::unordered_map<std::uint64_t, Db> shadow_cache_;
};

}  // namespace alphawan
