#include "sim/engine.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.push(Seconds{2.0}, [&] { order.push_back(2); });
  q.push(Seconds{1.0}, [&] { order.push_back(1); });
  q.push(Seconds{3.0}, [&] { order.push_back(3); });
  Seconds now{0.0};
  while (!q.empty()) q.pop(now)();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(now.value(), 3.0);
}

TEST(EventQueue, FifoAmongTies) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.push(Seconds{1.0}, [&order, i] { order.push_back(i); });
  }
  Seconds now{0.0};
  while (!q.empty()) q.pop(now)();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EmptyPopThrows) {
  EventQueue q;
  Seconds now{0.0};
  EXPECT_THROW(q.pop(now), std::logic_error);
  EXPECT_THROW(q.next_time(), std::logic_error);
}

TEST(Engine, AdvancesClock) {
  Engine engine;
  double seen = -1.0;
  engine.schedule_in(Seconds{5.0}, [&] { seen = engine.now().value(); });
  engine.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
  EXPECT_DOUBLE_EQ(engine.now().value(), 5.0);
}

TEST(Engine, NestedScheduling) {
  Engine engine;
  int fired = 0;
  engine.schedule_in(Seconds{1.0}, [&] {
    ++fired;
    engine.schedule_in(Seconds{1.0}, [&] { ++fired; });
  });
  EXPECT_EQ(engine.run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(engine.now().value(), 2.0);
}

TEST(Engine, HorizonStopsExecution) {
  Engine engine;
  int fired = 0;
  engine.schedule_in(Seconds{1.0}, [&] { ++fired; });
  engine.schedule_in(Seconds{10.0}, [&] { ++fired; });
  EXPECT_EQ(engine.run(Seconds{5.0}), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now().value(), 5.0);
  EXPECT_EQ(engine.run(), 1u);  // remaining event still runs later
  EXPECT_EQ(fired, 2);
}

TEST(Engine, NegativeDelayThrows) {
  Engine engine;
  EXPECT_THROW(engine.schedule_in(Seconds{-1.0}, [] {}), std::invalid_argument);
}

TEST(Engine, PastAbsoluteTimeThrows) {
  Engine engine;
  engine.schedule_in(Seconds{2.0}, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(Seconds{1.0}, [] {}), std::invalid_argument);
}

TEST(Engine, ResetRestoresInitialState) {
  Engine engine;
  engine.schedule_in(Seconds{1.0}, [] {});
  engine.run();
  engine.reset();
  EXPECT_DOUBLE_EQ(engine.now().value(), 0.0);
  EXPECT_EQ(engine.run(), 0u);
}

}  // namespace
}  // namespace alphawan
