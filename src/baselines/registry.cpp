#include "baselines/registry.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace alphawan {
namespace {

std::shared_ptr<const NodeMacPolicy> standard_mac(
    const BaselineTuning& tuning, bool use_adr) {
  StandardLorawanOptions options = tuning.node_side;
  options.use_adr = use_adr;
  return std::make_shared<StandardLorawanPolicy>(options);
}

std::string known_names(const BaselineRegistry& registry) {
  std::ostringstream out;
  bool first = true;
  for (const auto& name : registry.names()) {
    out << (first ? "" : ", ") << name;
    first = false;
  }
  return out.str();
}

}  // namespace

BaselineRegistry::BaselineRegistry() {
  register_scheme("standard", [](const BaselineTuning& t) {
    return BaselineScheme{"standard", standard_mac(t, true), nullptr};
  });
  register_scheme("standard-no-adr", [](const BaselineTuning& t) {
    return BaselineScheme{"standard-no-adr", standard_mac(t, false), nullptr};
  });
  register_scheme("random-cp", [](const BaselineTuning& t) {
    return BaselineScheme{
        "random-cp",
        std::make_shared<RandomCpPolicy>(t.random_cp, t.node_side), nullptr};
  });
  register_scheme("lmac", [](const BaselineTuning& t) {
    return BaselineScheme{
        "lmac", std::make_shared<LmacPolicy>(t.lmac, t.node_side), nullptr};
  });
  register_scheme("cic", [](const BaselineTuning& t) {
    return BaselineScheme{"cic", standard_mac(t, true),
                          std::make_shared<CicCapturePolicy>(t.cic)};
  });
  register_scheme("saloha", [](const BaselineTuning& t) {
    return BaselineScheme{
        "saloha", std::make_shared<SlottedAlohaPolicy>(t.saloha, t.node_side),
        nullptr};
  });
  register_scheme("ss5g", [](const BaselineTuning& t) {
    return BaselineScheme{"ss5g", standard_mac(t, true),
                          std::make_shared<Ss5gCapturePolicy>(t.ss5g)};
  });
  register_scheme("curvinglora", [](const BaselineTuning& t) {
    return BaselineScheme{
        "curvinglora", standard_mac(t, true),
        std::make_shared<CurvingLoraCapturePolicy>(t.curvinglora)};
  });
  register_scheme("alphawan", [](const BaselineTuning& t) {
    return BaselineScheme{
        "alphawan", std::make_shared<AlphaWanPolicy>(t.alphawan, t.node_side),
        nullptr};
  });
}

BaselineRegistry& BaselineRegistry::instance() {
  static BaselineRegistry registry;
  return registry;
}

void BaselineRegistry::register_scheme(std::string name, Factory factory) {
  if (name.empty()) {
    throw std::invalid_argument("BaselineRegistry: empty scheme name");
  }
  if (!factory) {
    throw std::invalid_argument("BaselineRegistry: null factory for '" +
                                name + "'");
  }
  const auto [it, inserted] =
      factories_.emplace(std::move(name), std::move(factory));
  if (!inserted) {
    throw std::invalid_argument("BaselineRegistry: scheme '" + it->first +
                                "' is already registered");
  }
}

BaselineScheme BaselineRegistry::make(std::string_view name,
                                      const BaselineTuning& tuning) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw std::invalid_argument("BaselineRegistry: unknown scheme '" +
                                std::string(name) + "' (registered: " +
                                known_names(*this) + ")");
  }
  return it->second(tuning);
}

bool BaselineRegistry::contains(std::string_view name) const {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> BaselineRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::vector<std::string> parse_baseline_list(std::string_view text,
                                             const BaselineRegistry& registry) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string_view::npos) end = text.size();
    std::string_view entry = text.substr(begin, end - begin);
    while (!entry.empty() && (entry.front() == ' ' || entry.front() == '\t')) {
      entry.remove_prefix(1);
    }
    while (!entry.empty() && (entry.back() == ' ' || entry.back() == '\t')) {
      entry.remove_suffix(1);
    }
    if (!entry.empty()) {
      if (!registry.contains(entry)) {
        throw std::invalid_argument(
            "ALPHAWAN_BASELINE: unknown scheme '" + std::string(entry) +
            "' (registered: " + known_names(registry) + ")");
      }
      out.emplace_back(entry);
    }
    if (end == text.size()) break;
    begin = end + 1;
  }
  return out;
}

std::vector<std::string> baselines_from_env(
    std::vector<std::string> fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe) — read once, before any threads.
  const char* text = std::getenv("ALPHAWAN_BASELINE");
  if (text == nullptr || *text == '\0') return fallback;
  auto parsed = parse_baseline_list(text);
  return parsed.empty() ? fallback : parsed;
}

}  // namespace alphawan
