#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace alphawan {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    ASSERT_GE(u, -5.0);
    ASSERT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of 2,3,4,5 hit
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(13);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(15);
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.uniform_int(-3, 1);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 1);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(21);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, ExponentialNonNegative) {
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) ASSERT_GE(rng.exponential(3.0), 0.0);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(25);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(27);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // The child should not replay the parent's stream.
  Rng parent_copy(31);
  (void)parent_copy.next();  // fork consumed one draw
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next() == parent_copy.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// Regression: copying an Rng mid-Box-Muller-pair used to duplicate the
// cached second sample into the copy, silently correlating the streams.
TEST(Rng, CopyDropsCachedNormalSample) {
  Rng original(41);
  (void)original.normal();  // generates a pair, caches the second half
  Rng copied(original);
  const double cached = original.normal();  // the cached second half
  // The copy must draw a FRESH pair from the shared state, not replay the
  // original's cached half.
  const double copy_fresh = copied.normal();
  EXPECT_NE(copy_fresh, cached);
  // Both sides continue from the same xoshiro state, so the copy's first
  // fresh normal equals the original's next fresh pair.
  EXPECT_DOUBLE_EQ(copy_fresh, original.normal());
}

TEST(Rng, CopyAssignmentDropsCachedNormalSample) {
  Rng original(43);
  (void)original.normal();
  Rng assigned(1);
  assigned = original;
  const double cached = original.normal();
  EXPECT_NE(assigned.normal(), cached);
}

TEST(Rng, CopyPreservesUniformStream) {
  Rng original(45);
  (void)original.next();
  Rng copied(original);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(copied.next(), original.next());
}

TEST(Rng, ReseedMatchesFreshInstance) {
  Rng reused(47);
  // Pollute all state, including the normal cache.
  for (int i = 0; i < 10; ++i) (void)reused.next();
  (void)reused.normal();
  reused.reseed(99);
  Rng fresh(99);
  EXPECT_EQ(reused.root_seed(), fresh.root_seed());
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(reused.next(), fresh.next());
    EXPECT_DOUBLE_EQ(reused.normal(), fresh.normal());
  }
}

TEST(Rng, SubstreamIndependentOfParentDraws) {
  // Substreams derive from the root SEED, not the evolving state — the
  // anchor of deterministic replay.
  Rng parent(51);
  Rng before = parent.substream("fading");
  for (int i = 0; i < 100; ++i) (void)parent.next();
  Rng after = parent.substream("fading");
  for (int i = 0; i < 32; ++i) EXPECT_EQ(before.next(), after.next());
}

TEST(Rng, SubstreamsAreDistinct) {
  Rng parent(53);
  Rng a = parent.substream("alpha");
  Rng b = parent.substream("beta");
  Rng c = parent.substream(1, 0);
  Rng d = parent.substream(0, 1);
  int ab = 0, cd = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++ab;
    if (c.next() == d.next()) ++cd;
  }
  EXPECT_LT(ab, 2);
  EXPECT_LT(cd, 2);
}

TEST(Rng, SubstreamDependsOnRootSeed) {
  Rng x = Rng(1).substream("s");
  Rng y = Rng(2).substream("s");
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (x.next() == y.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace alphawan
