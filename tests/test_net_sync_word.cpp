#include "net/sync_word.hpp"

#include <gtest/gtest.h>

#include <set>

namespace alphawan {
namespace {

TEST(SyncWord, NetworkZeroIsPublic) {
  EXPECT_EQ(sync_word_for_network(0), kPublicSyncWord);
}

TEST(SyncWord, PrivateNetworksNeverCollideWithPublic) {
  for (NetworkId n = 1; n <= 32; ++n) {
    EXPECT_NE(sync_word_for_network(n), kPublicSyncWord) << "network " << n;
  }
}

TEST(SyncWord, DistinctAcrossNetworks) {
  std::set<std::uint16_t> words;
  for (NetworkId n = 0; n <= 32; ++n) {
    EXPECT_TRUE(words.insert(sync_word_for_network(n)).second)
        << "duplicate sync word for network " << n;
  }
}

TEST(SyncWord, Deterministic) {
  for (NetworkId n = 0; n < 8; ++n) {
    EXPECT_EQ(sync_word_for_network(n), sync_word_for_network(n));
  }
}

}  // namespace
}  // namespace alphawan
