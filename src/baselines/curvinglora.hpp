// Baseline: CurvingLoRa-style concurrent-transmission capture (Li et al.,
// NSDI'22). Nonlinear ("curved") chirps replace LoRa's linear upchirps;
// transmissions using distinct curvatures stay quasi-orthogonal even on
// the same channel and spreading factor, so a gateway can despread a
// packet straight through a collision with differently-curved interferers.
// Curvature diversity fixes RF collisions only: every concurrently decoded
// packet still holds a decoder, so the pool stays the bottleneck.
#pragma once

#include "baselines/standard_lorawan.hpp"
#include "radio/capture_policy.hpp"

namespace alphawan {

struct CurvingLoraOptions {
  // Number of curvature-orthogonal chirp families the deployment assigns.
  // A node's curvature is a static hash of its id (curvature is baked into
  // the radio configuration, not negotiated per packet).
  int curvature_count = 4;
  // SNR headroom above the demod threshold needed to despread through the
  // residual cross-curvature energy.
  Db snr_headroom{1.0};
};

// Registry scheme "curvinglora" (capture side): rescues collision drops
// whose same-SF interferers all use a different curvature than the wanted
// packet.
class CurvingLoraCapturePolicy final : public CapturePolicy {
 public:
  explicit CurvingLoraCapturePolicy(CurvingLoraOptions options = {})
      : options_(options) {}

  [[nodiscard]] std::string_view name() const override {
    return "curvinglora";
  }
  void resolve(const CaptureContext& context,
               std::vector<RxOutcome>& outcomes) const override;

  // The curvature family a node's radio is configured with.
  [[nodiscard]] int curvature_of(NodeId node) const {
    return static_cast<int>(static_cast<std::uint64_t>(node) %
                            static_cast<std::uint64_t>(
                                options_.curvature_count));
  }

  [[nodiscard]] const CurvingLoraOptions& options() const { return options_; }

 private:
  CurvingLoraOptions options_;
};

}  // namespace alphawan
