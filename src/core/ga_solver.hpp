// Evolutionary solver for the CP problem (paper Sec. 4.3.1 runs an
// evolutionary algorithm on a central server). Tournament selection,
// per-gateway / per-node uniform crossover, repair-based feasibility, and
// greedy seeding. Deterministic under a fixed seed.
#pragma once

#include <optional>

#include "core/cp_problem.hpp"
#include "core/greedy_seed.hpp"

namespace alphawan {

struct GaConfig {
  int population = 32;
  int generations = 80;
  int tournament = 3;
  int elites = 2;
  double crossover_rate = 0.9;
  // Per-gene mutation probability for node genes; gateway genes mutate
  // with 10x this rate per gateway.
  double mutation_rate = 0.02;
  std::uint64_t seed = 42;
  // Strategy 1 disabled: force this channel count on every gateway.
  std::optional<int> forced_channel_count;
  // Strategy 7 node-side disabled: node genes are frozen to the values of
  // `frozen_nodes` (must be set when true).
  bool freeze_nodes = false;
  std::optional<CpSolution> initial;  // seed of the frozen node genes
  // Stop early once the objective reaches zero (perfect plan).
  bool early_stop = true;
  CpWeights weights{};
};

struct GaResult {
  CpSolution best;
  CpEvaluation best_eval;
  int generations_run = 0;
  std::size_t evaluations = 0;
};

[[nodiscard]] GaResult solve_cp(const CpInstance& instance,
                                const GaConfig& config = GaConfig{});

}  // namespace alphawan
