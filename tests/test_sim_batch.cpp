// Batch-mode selection (sim/batch.hpp) and the batched pipeline's edge
// shapes, pinned scalar-vs-batched at the exact seams where the batched
// restructuring could diverge from the reference: counting-sort bucket
// seams, partial-overlap lookback at the first/last event of a bucket,
// batches of exactly 1 and exactly 65 candidates, and the all-pruned
// window (every batched kernel invoked on an empty batch). The property
// suite (tests/property/test_prop_kernels.cpp) covers random worlds; these
// are the deliberate corners.
#include "sim/batch.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "check/digest.hpp"
#include "common/rng.hpp"
#include "net/sync_word.hpp"
#include "radio/gateway_radio.hpp"
#include "radio/rx_batch.hpp"
#include "sim/scenario.hpp"
#include "sim/traffic.hpp"

namespace alphawan {
namespace {

const Spectrum kSpec = spectrum_1m6();

// ---- mode selection ------------------------------------------------------

TEST(BatchMode, ParseRecognizesOnlyNonzeroIntegers) {
  EXPECT_EQ(parse_batch_mode(nullptr), 0);
  EXPECT_EQ(parse_batch_mode(""), 0);
  EXPECT_EQ(parse_batch_mode("0"), 0);
  EXPECT_EQ(parse_batch_mode("1"), 1);
  EXPECT_EQ(parse_batch_mode("2"), 1);
  EXPECT_EQ(parse_batch_mode("-1"), 1);
  EXPECT_EQ(parse_batch_mode("garbage"), 0);
  EXPECT_EQ(parse_batch_mode("1x"), 0);
  EXPECT_EQ(parse_batch_mode("00"), 0);
}

TEST(BatchMode, ResolveHonorsExplicitRequestOverDefault) {
  EXPECT_EQ(resolve_batch_mode(0), 0);
  EXPECT_EQ(resolve_batch_mode(1), 1);
  EXPECT_EQ(resolve_batch_mode(7), 1);
  EXPECT_EQ(resolve_batch_mode(-1), default_batch_mode());
}

// ---- radio-level scalar/batched differential on crafted windows ----------

GatewayRadio make_radio(NetworkId network = 0, int num_channels = 8) {
  GatewayRadio radio(default_profile(), network,
                     sync_word_for_network(network));
  std::vector<Channel> channels;
  for (int i = 0; i < num_channels; ++i) {
    channels.push_back(kSpec.grid_channel(i));
  }
  radio.configure_channels(channels);
  return radio;
}

Transmission make_tx(PacketId id, Channel channel, SpreadingFactor sf,
                     Seconds start, NetworkId network = 0) {
  Transmission tx;
  tx.id = id;
  tx.node = static_cast<NodeId>(id);
  tx.network = network;
  tx.sync_word = sync_word_for_network(network);
  tx.channel = channel;
  tx.params.sf = sf;
  tx.start = start;
  return tx;
}

void expect_outcomes_equal(const std::vector<RxOutcome>& scalar,
                           const std::vector<RxOutcome>& batched) {
  ASSERT_EQ(scalar.size(), batched.size());
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    const RxOutcome& s = scalar[i];
    const RxOutcome& b = batched[i];
    EXPECT_EQ(s.packet, b.packet) << "event " << i;
    EXPECT_EQ(s.node, b.node) << "event " << i;
    EXPECT_EQ(s.network, b.network) << "event " << i;
    EXPECT_EQ(s.disposition, b.disposition) << "event " << i;
    EXPECT_EQ(s.foreign_among_occupants, b.foreign_among_occupants)
        << "event " << i;
    EXPECT_EQ(s.foreign_interferer, b.foreign_interferer) << "event " << i;
    EXPECT_EQ(s.snr.value(), b.snr.value()) << "event " << i;
    EXPECT_EQ(s.chain_channel, b.chain_channel) << "event " << i;
  }
}

// Run the same crafted window through both pipelines on identically
// configured fresh radios and require outcome-for-outcome equality.
void expect_pipelines_agree(const std::vector<Transmission>& txs,
                            const std::vector<Dbm>& powers) {
  ASSERT_EQ(txs.size(), powers.size());
  std::vector<RxEvent> events;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    events.push_back(RxEvent{txs[i], powers[i]});
  }
  GatewayRadio scalar_radio = make_radio();
  const auto scalar = scalar_radio.process(events);

  WindowTxTable table;
  table.build(txs);
  std::vector<std::uint32_t> tx_index(txs.size());
  std::iota(tx_index.begin(), tx_index.end(), 0u);
  const RxEventView view{&table, tx_index.data(), powers.data(), txs.size()};
  GatewayRadio batched_radio = make_radio();
  const auto batched = batched_radio.process(view);
  expect_outcomes_equal(scalar, batched);
}

TEST(BatchPipeline, SingleCandidateWindow) {
  const auto tx = make_tx(1, kSpec.grid_channel(3), SpreadingFactor::kSF9,
                          Seconds{0.01});
  expect_pipelines_agree({tx}, {Dbm{-90.0}});
}

TEST(BatchPipeline, AllCandidatesBelowSensitivity) {
  // Every event filtered out before dispatch: the batched kernels all run
  // on empty decode sets.
  std::vector<Transmission> txs;
  std::vector<Dbm> powers;
  for (int i = 0; i < 6; ++i) {
    txs.push_back(make_tx(static_cast<PacketId>(i + 1),
                          kSpec.grid_channel(i % 8), SpreadingFactor::kSF7,
                          Seconds{0.002 * i}));
    powers.push_back(Dbm{-200.0});
  }
  expect_pipelines_agree(txs, powers);
  // And the fates really are "not detected" in both modes.
  GatewayRadio radio = make_radio();
  std::vector<RxEvent> events;
  for (std::size_t i = 0; i < txs.size(); ++i) {
    events.push_back(RxEvent{txs[i], powers[i]});
  }
  for (const auto& out : radio.process(events)) {
    EXPECT_EQ(out.disposition, RxDisposition::kNotDetected);
  }
}

TEST(BatchPipeline, CountingSortBucketSeams) {
  // Events packed around adjacent coarse-frequency buckets: grid channels
  // 0 and 1 fill two adjacent buckets, and an off-grid channel midway
  // between them straddles the seam (partial overlap with both chains,
  // landing its bucket in mixed/non-uniform territory when it collides
  // with a grid event's bucket). The counting sort must keep each event
  // with its own bucket and the scans must not leak across the seam.
  const Channel ch0 = kSpec.grid_channel(0);
  const Channel ch1 = kSpec.grid_channel(1);
  const Channel seam{Hz{(ch0.center.value() + ch1.center.value()) / 2.0},
                     ch0.bandwidth};
  std::vector<Transmission> txs;
  std::vector<Dbm> powers;
  PacketId id = 1;
  // Same-channel colliders in bucket 0 (capture test territory).
  txs.push_back(make_tx(id++, ch0, SpreadingFactor::kSF8, Seconds{0.000}));
  powers.push_back(Dbm{-85.0});
  txs.push_back(make_tx(id++, ch0, SpreadingFactor::kSF8, Seconds{0.003}));
  powers.push_back(Dbm{-84.0});
  // A clean packet in bucket 1 that must NOT see bucket-0 interference.
  txs.push_back(make_tx(id++, ch1, SpreadingFactor::kSF8, Seconds{0.001}));
  powers.push_back(Dbm{-90.0});
  // Seam packets: partial overlap with both chains.
  txs.push_back(make_tx(id++, seam, SpreadingFactor::kSF8, Seconds{0.002}));
  powers.push_back(Dbm{-70.0});
  txs.push_back(make_tx(id++, seam, SpreadingFactor::kSF10, Seconds{0.004}));
  powers.push_back(Dbm{-75.0});
  // Cross-SF interferer in bucket 1.
  txs.push_back(make_tx(id++, ch1, SpreadingFactor::kSF12, Seconds{0.000}));
  powers.push_back(Dbm{-60.0});
  expect_pipelines_agree(txs, powers);
}

TEST(BatchPipeline, PartialOverlapLookbackAtBucketEdges) {
  // A misaligned bucket (0 < rho < threshold against every chain) whose
  // first event is a long SF12 frame and whose last is a short SF7 frame:
  // the lookback window of the last decoded grid packet must reach back to
  // the bucket's first event, and the first grid packet must see the
  // bucket's later events only through the forward scan bound.
  const Channel ch2 = kSpec.grid_channel(2);
  const Channel offset{ch2.center + Hz{0.5 * ch2.bandwidth.value()},
                       ch2.bandwidth};
  std::vector<Transmission> txs;
  std::vector<Dbm> powers;
  PacketId id = 1;
  // Long, loud misaligned interferer opening its bucket.
  txs.push_back(make_tx(id++, offset, SpreadingFactor::kSF12, Seconds{0.0}));
  powers.push_back(Dbm{-55.0});
  // Grid packets decoded at the front and the tail of the window.
  txs.push_back(make_tx(id++, ch2, SpreadingFactor::kSF7, Seconds{0.005}));
  powers.push_back(Dbm{-100.0});
  txs.push_back(make_tx(id++, ch2, SpreadingFactor::kSF7, Seconds{0.9}));
  powers.push_back(Dbm{-100.0});
  // Short misaligned interferer closing its bucket, overlapping the tail
  // packet only.
  txs.push_back(make_tx(id++, offset, SpreadingFactor::kSF7, Seconds{0.91}));
  powers.push_back(Dbm{-58.0});
  expect_pipelines_agree(txs, powers);
}

TEST(BatchPipeline, SixtyFiveCandidateWindow) {
  // One past the 64-wide mask fast path (and any 64-lane assumption a
  // batched kernel might silently bake in): 65 events across channels,
  // SFs, and start times, with enough power spread to exercise capture,
  // decoder contention, and sensitivity drops in one window.
  Rng rng(0x65656565ULL);
  std::vector<Transmission> txs;
  std::vector<Dbm> powers;
  for (int i = 0; i < 65; ++i) {
    const Channel ch = kSpec.grid_channel(i % 8);
    const auto sf = sf_from_index(i % kNumSpreadingFactors);
    txs.push_back(make_tx(static_cast<PacketId>(i + 1), ch, sf,
                          Seconds{rng.uniform(0.0, 0.2)}));
    powers.push_back(Dbm{rng.uniform(-130.0, -60.0)});
  }
  expect_pipelines_agree(txs, powers);
}

// ---- runner-level seams --------------------------------------------------

struct RunnerOutcome {
  std::uint64_t digest = 0;
  std::size_t delivered = 0;
};

RunnerOutcome runner_digest(int batch, int gateways, int nodes,
                            std::uint64_t seed, Dbm tx_power = Dbm{14.0}) {
  Deployment deployment(Region{Meters{1000.0}, Meters{1000.0}},
                        spectrum_1m6(), ChannelModelConfig{});
  auto& network = deployment.add_network("op");
  Rng rng(seed);
  deployment.place_gateways(network, gateways, default_profile(), rng);
  deployment.place_nodes(network, nodes, rng);
  std::vector<EndNode*> nodes_ptr;
  for (auto& node : network.nodes()) {
    NodeRadioConfig cfg = node.config();
    cfg.tx_power = tx_power;
    node.apply_config(cfg);
    nodes_ptr.push_back(&node);
  }
  PacketIdSource ids;
  const auto txs = concurrent_burst(nodes_ptr, Seconds{0.0}, ids);
  RunOptions options;
  options.batch = batch;
  ScenarioRunner runner(deployment, seed, options);
  const auto result = runner.run_window(txs);
  return RunnerOutcome{fate_digest(result.fates), result.total_delivered()};
}

TEST(BatchPipeline, MaskFallbackBeyond64GatewayColumns) {
  // 65 gateways in one shard slice disable the 64-bit candidacy mask
  // (sh.use_mask = false): the batched gather must agree with the scalar
  // path through the range-list fallback too.
  const RunnerOutcome scalar = runner_digest(/*batch=*/0, /*gateways=*/65,
                                             /*nodes=*/24, /*seed=*/42);
  const RunnerOutcome batched = runner_digest(/*batch=*/1, /*gateways=*/65,
                                              /*nodes=*/24, /*seed=*/42);
  EXPECT_EQ(digest_hex(batched.digest), digest_hex(scalar.digest));
  // The window must be live, or the comparison proves nothing.
  EXPECT_GT(scalar.delivered, 0u);
}

TEST(BatchPipeline, AllPrunedWindowMatchesScalar) {
  // Transmit powers so low every (tx, gateway) candidate is pruned before
  // the fading draw: the batched per-gateway batches are all empty.
  const Dbm whisper{-80.0};
  const RunnerOutcome scalar =
      runner_digest(/*batch=*/0, /*gateways=*/3, /*nodes=*/12, /*seed=*/43,
                    whisper);
  const RunnerOutcome batched =
      runner_digest(/*batch=*/1, /*gateways=*/3, /*nodes=*/12, /*seed=*/43,
                    whisper);
  EXPECT_EQ(digest_hex(batched.digest), digest_hex(scalar.digest));
  // If anything was delivered, the window was not all-pruned and the test
  // is not exercising the empty-batch kernels.
  EXPECT_EQ(scalar.delivered, 0u);
}

}  // namespace
}  // namespace alphawan
