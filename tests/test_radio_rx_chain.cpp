#include "radio/rx_chain.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

Channel ch(Hz center) { return Channel{center, kLoRaBandwidth125k}; }

TEST(RxChain, PassesAlignedChannel) {
  const RxChain chain{ch(Hz{917.0e6})};
  EXPECT_TRUE(chain.passes(ch(Hz{917.0e6})));
}

TEST(RxChain, PassesNearAlignedChannel) {
  // 3 kHz offset keeps ~97.6% overlap — above the detect threshold.
  const RxChain chain{ch(Hz{917.0e6})};
  EXPECT_TRUE(chain.passes(ch(Hz{917.0e6 + 3e3})));
}

TEST(RxChain, RejectsMisalignedChannel) {
  const RxChain chain{ch(Hz{917.0e6})};
  // Half-channel offset: well below the 95% overlap needed to correlate.
  EXPECT_FALSE(chain.passes(ch(Hz{917.0e6 + 62.5e3})));
  // Fully disjoint grid neighbour.
  EXPECT_FALSE(chain.passes(ch(Hz{917.2e6})));
}

TEST(RxChain, BestChainFindsExactMatch) {
  const std::vector<RxChain> chains = {
      RxChain{ch(Hz{916.9e6})}, RxChain{ch(Hz{917.1e6})}, RxChain{ch(Hz{917.3e6})}};
  const auto index = best_chain(chains, ch(Hz{917.3e6}));
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(*index, 2u);
}

TEST(RxChain, BestChainPrefersClosestAlignment) {
  // Two chains pass the filter; the better-aligned one must win.
  const std::vector<RxChain> chains = {RxChain{ch(Hz{917.0e6 + 4e3})},
                                       RxChain{ch(Hz{917.0e6 + 1e3})}};
  const auto index = best_chain(chains, ch(Hz{917.0e6}));
  ASSERT_TRUE(index.has_value());
  EXPECT_EQ(*index, 1u);
}

TEST(RxChain, BestChainRejectsWhenNoFilterPasses) {
  // The Strategy-8 isolation path: every chain truncates the packet.
  const std::vector<RxChain> chains = {RxChain{ch(Hz{916.9e6})},
                                       RxChain{ch(Hz{917.1e6})}};
  EXPECT_FALSE(best_chain(chains, ch(Hz{917.0e6})).has_value());
}

TEST(RxChain, BestChainOnEmptyChainList) {
  EXPECT_FALSE(best_chain({}, ch(Hz{917.0e6})).has_value());
}

}  // namespace
}  // namespace alphawan
