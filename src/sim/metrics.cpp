#include "sim/metrics.hpp"

namespace alphawan {

std::string_view loss_cause_name(LossCause cause) {
  switch (cause) {
    case LossCause::kDelivered: return "delivered";
    case LossCause::kDecoderContentionIntra: return "decoder-contention-intra";
    case LossCause::kDecoderContentionInter: return "decoder-contention-inter";
    case LossCause::kChannelContentionIntra: return "channel-contention-intra";
    case LossCause::kChannelContentionInter: return "channel-contention-inter";
    case LossCause::kOther: return "other";
  }
  return "?";
}

PacketFate classify_packet(const Transmission& tx,
                           const std::vector<RxOutcome>& own_gateway_outcomes) {
  PacketFate fate;
  fate.packet = tx.id;
  fate.node = tx.node;
  fate.network = tx.network;
  fate.payload_bytes = tx.payload_bytes;
  fate.dr = sf_to_dr(tx.params.sf);

  bool decoder_drop = false;
  bool decoder_drop_foreign = false;
  bool collision = false;
  bool collision_foreign = false;
  for (const auto& out : own_gateway_outcomes) {
    switch (out.disposition) {
      case RxDisposition::kDelivered:
        fate.delivered = true;
        fate.cause = LossCause::kDelivered;
        return fate;
      case RxDisposition::kDroppedDecoderBusy:
        decoder_drop = true;
        decoder_drop_foreign |= out.foreign_among_occupants;
        break;
      case RxDisposition::kDroppedCollision:
        collision = true;
        collision_foreign |= out.foreign_interferer;
        break;
      default:
        break;
    }
  }
  if (decoder_drop) {
    fate.cause = decoder_drop_foreign ? LossCause::kDecoderContentionInter
                                      : LossCause::kDecoderContentionIntra;
  } else if (collision) {
    fate.cause = collision_foreign ? LossCause::kChannelContentionInter
                                   : LossCause::kChannelContentionIntra;
  } else {
    fate.cause = LossCause::kOther;
  }
  return fate;
}

void MetricsCollector::record(const PacketFate& fate) {
  fates_.push_back(fate);
  auto& net = per_network_[fate.network];
  ++net.offered;
  ++total_offered_;
  if (fate.delivered) {
    ++net.delivered;
    ++total_delivered_;
    net.delivered_bytes += fate.payload_bytes;
    total_delivered_bytes_ += fate.payload_bytes;
    ++net.served[fate.node];
  } else {
    net.causes.add(fate.cause);
    total_causes_.add(fate.cause);
  }
}

std::size_t MetricsCollector::offered(NetworkId network) const {
  const auto it = per_network_.find(network);
  return it == per_network_.end() ? 0 : it->second.offered;
}

std::size_t MetricsCollector::delivered(NetworkId network) const {
  const auto it = per_network_.find(network);
  return it == per_network_.end() ? 0 : it->second.delivered;
}

double MetricsCollector::prr(NetworkId network) const {
  const std::size_t off = offered(network);
  return off == 0 ? 0.0
                  : static_cast<double>(delivered(network)) /
                        static_cast<double>(off);
}

double MetricsCollector::total_prr() const {
  return total_offered_ == 0 ? 0.0
                             : static_cast<double>(total_delivered_) /
                                   static_cast<double>(total_offered_);
}

double MetricsCollector::loss_fraction(LossCause cause) const {
  return total_offered_ == 0
             ? 0.0
             : static_cast<double>(total_causes_.get(cause)) /
                   static_cast<double>(total_offered_);
}

double MetricsCollector::loss_fraction(NetworkId network,
                                       LossCause cause) const {
  const auto it = per_network_.find(network);
  if (it == per_network_.end() || it->second.offered == 0) return 0.0;
  return static_cast<double>(it->second.causes.get(cause)) /
         static_cast<double>(it->second.offered);
}

std::size_t MetricsCollector::losses(NetworkId network, LossCause cause) const {
  const auto it = per_network_.find(network);
  return it == per_network_.end() ? 0 : it->second.causes.get(cause);
}

std::vector<NetworkId> MetricsCollector::networks() const {
  std::vector<NetworkId> ids;
  ids.reserve(per_network_.size());
  for (const auto& [network, data] : per_network_) ids.push_back(network);
  return ids;
}

std::size_t MetricsCollector::delivered_bytes(NetworkId network) const {
  const auto it = per_network_.find(network);
  return it == per_network_.end() ? 0 : it->second.delivered_bytes;
}

std::size_t MetricsCollector::served_nodes(NetworkId network) const {
  const auto it = per_network_.find(network);
  return it == per_network_.end() ? 0 : it->second.served.size();
}

std::size_t MetricsCollector::total_served_nodes() const {
  std::size_t total = 0;
  for (const auto& [net, data] : per_network_) total += data.served.size();
  return total;
}

void MetricsCollector::clear() { *this = MetricsCollector{}; }

}  // namespace alphawan
