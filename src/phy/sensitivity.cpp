#include "phy/sensitivity.hpp"

namespace alphawan {

std::optional<DataRate> best_data_rate_for_snr(Db snr, Db margin) {
  // DR5 (SF7) is fastest; walk from fastest to slowest.
  for (int dr = kNumDataRates - 1; dr >= 0; --dr) {
    const auto rate = static_cast<DataRate>(dr);
    if (snr >= demod_snr_threshold(dr_to_sf(rate)) + margin) {
      return rate;
    }
  }
  return std::nullopt;
}

const std::array<RangeLevel, kNumDataRates>& range_levels() {
  // Ranges derived from the urban log-distance model in channel_model.cpp
  // at 14 dBm: the distance where mean SNR ~= demod threshold + 5 dB fade
  // margin. These anchor the CP problem's discrete DR set; they are not
  // used for reception decisions.
  static const std::array<RangeLevel, kNumDataRates> kLevels = {{
      {DataRate::kDR5, Meters{610.0}, Dbm{14.0}},   // SF7
      {DataRate::kDR4, Meters{720.0}, Dbm{14.0}},   // SF8
      {DataRate::kDR3, Meters{850.0}, Dbm{14.0}},   // SF9
      {DataRate::kDR2, Meters{1000.0}, Dbm{14.0}},  // SF10
      {DataRate::kDR1, Meters{1180.0}, Dbm{14.0}},  // SF11
      {DataRate::kDR0, Meters{1390.0}, Dbm{14.0}},  // SF12
  }};
  return kLevels;
}

}  // namespace alphawan
