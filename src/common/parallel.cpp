#include "common/parallel.hpp"

#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

namespace alphawan {
namespace {

// Set while a pool worker is executing a task: reentrant parallel_for calls
// from inside a region must not block on the shared queue (the queue could
// be drained only by the very workers that are waiting), so they degrade to
// serial execution instead.
thread_local bool t_inside_worker = false;

}  // namespace

std::vector<IndexRange> static_partition(std::size_t count, int chunks) {
  std::vector<IndexRange> ranges;
  if (count == 0 || chunks < 1) return ranges;
  const auto k = std::min<std::size_t>(static_cast<std::size_t>(chunks), count);
  ranges.reserve(k);
  const std::size_t base = count / k;
  const std::size_t remainder = count % k;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const std::size_t size = base + (c < remainder ? 1 : 0);
    ranges.push_back(IndexRange{begin, begin + size});
    begin += size;
  }
  return ranges;
}

int parse_thread_count(const char* text) {
  if (text != nullptr && *text != '\0') {
    char* end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (end != nullptr && *end == '\0' && value >= 1 && value <= 4096) {
      return static_cast<int>(value);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int default_thread_count() {
  static const int count = parse_thread_count(std::getenv("ALPHAWAN_THREADS"));
  return count;
}

// Shared bookkeeping of one parallel_for call: how many chunks are still
// outstanding and the exception of the lowest-indexed failing chunk. Lives
// on the submitting call frame, which outlives the region.
struct Region {
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t pending = 0;
  std::size_t first_error_chunk = 0;
  std::exception_ptr error;

  void finish_chunk(std::size_t chunk, std::exception_ptr err) {
    std::lock_guard<std::mutex> lock(mutex);
    if (err && (!error || chunk < first_error_chunk)) {
      error = err;
      first_error_chunk = chunk;
    }
    if (--pending == 0) done_cv.notify_all();
  }
};

// One chunk of a parallel_for region.
struct ThreadPool::Task {
  IndexRange range;
  std::size_t chunk_index = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  Region* region = nullptr;

  void run() const {
    std::exception_ptr err;
    try {
      for (std::size_t i = range.begin; i < range.end; ++i) (*body)(i);
    } catch (...) {
      err = std::current_exception();
    }
    region->finish_chunk(chunk_index, err);
  }
};

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;
  std::deque<Task> queue;
  std::vector<std::thread> workers;
  bool stopping = false;
};

ThreadPool::ThreadPool(int threads)
    : threads_(threads < 1 ? 1 : threads), impl_(new Impl) {
  for (int t = 0; t < threads_ - 1; ++t) {
    impl_->workers.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stopping = true;
  }
  impl_->work_cv.notify_all();
  for (auto& worker : impl_->workers) worker.join();
  delete impl_;
}

void ThreadPool::worker_loop() {
  t_inside_worker = true;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(impl_->mutex);
      impl_->work_cv.wait(
          lock, [this] { return impl_->stopping || !impl_->queue.empty(); });
      if (impl_->queue.empty()) return;  // stopping and drained
      task = impl_->queue.front();
      impl_->queue.pop_front();
    }
    task.run();
  }
}

void ThreadPool::parallel_for(std::size_t count, int chunks,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  const auto ranges = static_partition(count, chunks);
  // Serial paths: a single chunk, no workers to hand off to, or a reentrant
  // call from inside a region (blocking here could starve the queue). The
  // partition — and therefore every result slot — is the same either way.
  if (ranges.size() == 1 || threads_ == 1 || t_inside_worker) {
    for (const auto& range : ranges) {
      for (std::size_t i = range.begin; i < range.end; ++i) body(i);
    }
    return;
  }

  Region region;
  region.pending = ranges.size();
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    // Enqueue every chunk but the first; the caller runs chunk 0 itself.
    for (std::size_t c = 1; c < ranges.size(); ++c) {
      impl_->queue.push_back(Task{ranges[c], c, &body, &region});
    }
  }
  impl_->work_cv.notify_all();
  Task{ranges[0], 0, &body, &region}.run();

  // Help drain the queue instead of idling (a task from another concurrent
  // region settles with that region's own counter).
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(impl_->mutex);
      if (impl_->queue.empty()) break;
      task = impl_->queue.front();
      impl_->queue.pop_front();
    }
    const bool was_inside = t_inside_worker;
    t_inside_worker = true;
    task.run();
    t_inside_worker = was_inside;
  }
  {
    std::unique_lock<std::mutex> lock(region.mutex);
    region.done_cv.wait(lock, [&region] { return region.pending == 0; });
  }
  if (region.error) std::rethrow_exception(region.error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_thread_count());
  return pool;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body, int threads) {
  const int k = threads > 0 ? threads : default_thread_count();
  if (k == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  ThreadPool::global().parallel_for(count, k, body);
}

}  // namespace alphawan
