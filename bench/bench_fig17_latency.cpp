// Figure 17 reproduction: end-to-end latency of an AlphaWAN capacity
// upgrade. (a) single network at 4k/8k/12k users (4/8/12 gateways):
// CP solving (measured wall clock of our GA), config distribution,
// gateway reboot. (b) 2..4 coexisting networks (3k users each): adds the
// operator-to-Master exchanges. Paper: total < 10 s, reboot dominates
// (~4.62 s), CP solve 0.45 -> 1.37 s from 4k to 12k users.
#include "harness.hpp"

using namespace alphawan;
using namespace alphawan::bench;

namespace {

UpgradeReport upgrade_once(std::size_t users, int gateways,
                           MasterNode* master, std::uint64_t seed) {
  Deployment deployment{Region{Meters{2100}, Meters{1600}}, spectrum_4m8(),
                        urban_channel(seed)};
  auto& network = deployment.add_network("op");
  Rng rng(seed);
  deployment.place_gateways(network, gateways, default_profile(), rng);
  deployment.place_nodes(network, users, rng);
  LatencyModel latency{LatencyModelConfig{}, seed};
  AlphaWanConfig cfg;
  cfg.strategy8_spectrum_sharing = master != nullptr;
  // Production-sized solver budget (the paper's workstation solve).
  cfg.planner.ga.population = 32;
  cfg.planner.ga.generations = 40;
  cfg.planner.ga.early_stop = false;
  AlphaWanController controller(cfg, latency);
  const auto links = oracle_link_estimates(deployment, network);
  return controller.upgrade(network, deployment.spectrum(), links,
                            uniform_traffic(network), master);
}

void print_report(const char* label, const UpgradeReport& report) {
  std::printf("  %-14s %-10.2f %-12.2f %-12.2f %-10.2f %-8.2f\n", label,
              report.cp_solve.value(), report.master_communication.value(),
              report.config_distribution.value(), report.gateway_reboot.value(),
              report.total().value());
}

}  // namespace

int main() {
  print_header(
      "Fig. 17a — capacity-upgrade latency, single network\n"
      "(columns: CP solve [measured], Master comm, config push, reboot,\n"
      "total; paper: CP 0.45->1.37 s, reboot ~4.62 s, total < 10 s)");
  std::printf("  %-14s %-10s %-12s %-12s %-10s %-8s\n", "scale", "cp(s)",
              "master(s)", "config(s)", "reboot(s)", "total");
  print_report("4k / 4 GW", upgrade_once(4000, 4, nullptr, 1));
  print_report("8k / 8 GW", upgrade_once(8000, 8, nullptr, 2));
  print_report("12k / 12 GW", upgrade_once(12000, 12, nullptr, 3));

  print_header(
      "Fig. 17b — coexisting networks (3k users, 4 GWs each; networks\n"
      "solve their CP problems in parallel, so the slowest one counts)\n"
      "paper: 0.17-0.28 s of Master communication, total < 6 s");
  std::printf("  %-14s %-10s %-12s %-12s %-10s %-8s\n", "networks", "cp(s)",
              "master(s)", "config(s)", "reboot(s)", "total");
  for (int networks = 2; networks <= 4; ++networks) {
    MasterNode master(MasterConfig{spectrum_4m8(), 0.4, networks});
    UpgradeReport worst;
    Seconds worst_total{0.0};
    for (int n = 0; n < networks; ++n) {
      const auto report =
          upgrade_once(3000, 4, &master, 10 + networks * 4 + n);
      if (report.total() > worst_total) {
        worst_total = report.total();
        worst = report;
      }
    }
    char label[16];
    std::snprintf(label, sizeof(label), "%d", networks);
    print_report(label, worst);
  }
  return 0;
}
