#include "radio/gateway_radio.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "phy/capture.hpp"
#include "phy/overlap.hpp"
#include "phy/sensitivity.hpp"
#include "radio/detector.hpp"

namespace alphawan {
namespace {

double dbm_to_lin(Dbm p) { return std::pow(10.0, p.value() / 10.0); }
Dbm lin_to_dbm(double lin) { return Dbm{10.0 * std::log10(lin)}; }

}  // namespace

GatewayRadio::GatewayRadio(GatewayProfile profile, NetworkId network,
                           std::uint16_t sync_word)
    : profile_(profile),
      network_(network),
      sync_word_(sync_word),
      pool_(static_cast<std::size_t>(profile.decoders)) {}

void GatewayRadio::configure_channels(std::vector<Channel> channels) {
  if (channels.empty()) {
    throw std::invalid_argument("GatewayRadio: empty channel set");
  }
  if (static_cast<int>(channels.size()) > profile_.data_rx_chains) {
    throw std::invalid_argument(
        "GatewayRadio: more channels than Rx chains (P_j violated)");
  }
  auto [lo, hi] = std::minmax_element(
      channels.begin(), channels.end(),
      [](const Channel& a, const Channel& b) { return a.center < b.center; });
  if (hi->high() - lo->low() > profile_.rx_spectrum + Hz{1.0}) {
    throw std::invalid_argument(
        "GatewayRadio: channel span exceeds radio bandwidth (B_j violated)");
  }
  chains_.clear();
  chains_.reserve(channels.size());
  for (const auto& ch : channels) chains_.push_back(RxChain{ch});
}

void GatewayRadio::set_observer(SimObserver* observer) {
  observer_ = observer;
  pool_.set_observer(observer);
}

std::vector<RxOutcome> GatewayRadio::process(
    const std::vector<RxEvent>& events) {
  std::vector<RxOutcome> outcomes(events.size());
  pool_.reset();
  if (observer_ != nullptr) observer_->on_radio_window_begin();

  // Phase 1: front-end + detection per event.
  std::vector<DispatchEntry> queue;
  std::vector<int> chain_of(events.size(), -1);
  queue.reserve(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& ev = events[i];
    auto& out = outcomes[i];
    out.packet = ev.tx.id;
    out.node = ev.tx.node;
    out.network = ev.tx.network;
    const auto chain = best_chain(chains_, ev.tx.channel);
    if (!chain) {
      out.disposition = RxDisposition::kRejectedFrontEnd;
      continue;
    }
    chain_of[i] = static_cast<int>(*chain);
    out.chain_channel = static_cast<int>(*chain);
    out.snr = packet_snr(ev.rx_power, ev.tx.channel.bandwidth);
    const auto detection = detect(ev.tx, out.snr);
    if (!detection) {
      out.disposition = RxDisposition::kNotDetected;
      continue;
    }
    queue.push_back(DispatchEntry{i, detection->lock_on, ev.tx.end(),
                                  ev.tx.network, ev.tx.id});
  }

  // Phase 2: FCFS dispatch into the decoder pool.
  sort_fcfs(queue);
  std::vector<std::size_t> decoding;  // event indices holding a decoder
  decoding.reserve(queue.size());
  for (const auto& entry : queue) {
    if (observer_ != nullptr) {
      observer_->on_dispatch(events[entry.event_index].tx.start, entry.lock_on,
                             entry.packet);
    }
    const DispatchResult result = dispatch(pool_, entry);
    auto& out = outcomes[entry.event_index];
    if (!result.acquired) {
      out.disposition = RxDisposition::kDroppedDecoderBusy;
      out.foreign_among_occupants = result.foreign_among_occupants;
      continue;
    }
    decoding.push_back(entry.event_index);
  }

  // Phase 3: decode each packet that holds a decoder, accounting for
  // interference from *all* transmissions in the air (including ones the
  // front-end rejected or that were never detected — their RF energy is
  // still present). Events are bucketed by coarse frequency (interference
  // requires spectral overlap) and sorted by start time within a bucket,
  // bounding the interferer scan to plausible overlappers.
  constexpr auto bucket_of = [](Hz center) {
    return static_cast<std::int64_t>(center / kChannelSpacing);
  };
  std::map<std::int64_t, std::vector<std::size_t>> by_bucket;
  for (std::size_t i = 0; i < events.size(); ++i) {
    by_bucket[bucket_of(events[i].tx.channel.center)].push_back(i);
  }
  std::map<std::int64_t, Seconds> bucket_max_duration;
  for (auto& [bucket, indices] : by_bucket) {
    std::sort(indices.begin(), indices.end(),
              [&](std::size_t a, std::size_t b) {
                return events[a].tx.start < events[b].tx.start;
              });
    Seconds longest{0.0};
    for (const auto idx : indices) {
      longest = std::max(longest, events[idx].tx.end() - events[idx].tx.start);
    }
    bucket_max_duration[bucket] = longest;
  }

  for (const std::size_t i : decoding) {
    const auto& ev = events[i];
    auto& out = outcomes[i];
    const Channel& rx_ch = chains_[static_cast<std::size_t>(chain_of[i])].channel;

    const double noise_lin =
        dbm_to_lin(noise_floor_dbm(ev.tx.channel.bandwidth));
    double misaligned_intf_lin = 0.0;
    double aligned_same_sf_lin = 0.0;
    bool collided = false;
    bool foreign_fatal = false;
    Dbm strongest_same_sf{-400.0};

    // Candidates: same or adjacent frequency bucket, starting within
    // [ev.start - bucket_longest, ev.end).
    const std::int64_t center_bucket = bucket_of(ev.tx.channel.center);
    for (std::int64_t bucket = center_bucket - 1;
         bucket <= center_bucket + 1; ++bucket) {
      const auto bucket_it = by_bucket.find(bucket);
      if (bucket_it == by_bucket.end()) continue;
      const auto& indices = bucket_it->second;
      const Seconds lookback = bucket_max_duration[bucket];
      const auto first = std::lower_bound(
          indices.begin(), indices.end(), ev.tx.start - lookback,
          [&](std::size_t idx, Seconds t) {
            return events[idx].tx.start < t;
          });
    for (auto it = first; it != indices.end(); ++it) {
      const std::size_t j = *it;
      if (events[j].tx.start >= ev.tx.end()) break;
      if (j == i) continue;
      const auto& other = events[j];
      if (!ev.tx.overlaps_in_time(other.tx)) continue;
      const double rho = overlap_ratio(other.tx.channel, rx_ch);
      if (rho <= 0.0) continue;
      const bool same_sf = other.tx.params.sf == ev.tx.params.sf;
      if (rho >= kDetectOverlapThreshold) {
        // Co-channel interferer: SF capture matrix applies.
        if (same_sf) {
          aligned_same_sf_lin += dbm_to_lin(other.rx_power);
          if (other.rx_power > strongest_same_sf) {
            strongest_same_sf = other.rx_power;
            // Attribute a potential fatal collision to this interferer.
          }
          if (ev.rx_power - other.rx_power <
              capture_sir_threshold(ev.tx.params.sf, other.tx.params.sf)) {
            collided = true;
            foreign_fatal = other.tx.network != ev.tx.network;
          }
        } else if (ev.rx_power - other.rx_power <
                   capture_sir_threshold(ev.tx.params.sf,
                                         other.tx.params.sf)) {
          collided = true;
          foreign_fatal = other.tx.network != ev.tx.network;
        }
      } else {
        // Misaligned interferer: filter-truncated energy acts as noise.
        Dbm eff = effective_interference_dbm(other.rx_power, other.tx.channel,
                                             rx_ch);
        if (!same_sf) eff -= kCrossSfMisalignedRejection;
        if (eff > Dbm{-250.0}) misaligned_intf_lin += dbm_to_lin(eff);
      }
    }
    }

    // Combined same-SF co-channel power must also satisfy capture.
    if (!collided && aligned_same_sf_lin > 0.0) {
      const Dbm combined = lin_to_dbm(aligned_same_sf_lin);
      if (ev.rx_power - combined <
          capture_sir_threshold(ev.tx.params.sf, ev.tx.params.sf)) {
        collided = true;
      }
    }

    if (collided) {
      out.disposition = RxDisposition::kDroppedCollision;
      out.foreign_interferer = foreign_fatal;
      continue;
    }

    const Db snr_eff =
        ev.rx_power - lin_to_dbm(noise_lin + misaligned_intf_lin);
    if (snr_eff < demod_snr_threshold(ev.tx.params.sf)) {
      out.disposition = RxDisposition::kDroppedLowSnr;
      continue;
    }

    out.disposition = ev.tx.sync_word == sync_word_
                          ? RxDisposition::kDelivered
                          : RxDisposition::kDecodedForeign;
  }
  return outcomes;
}

}  // namespace alphawan
