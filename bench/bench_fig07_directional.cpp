// Figure 7 reproduction: why directional antennas (Strategy 6) fail.
// A 12 dBi panel attenuates off-axis packets by 14-40 dB — yet LoRa
// demodulates tens of dB below the noise floor, so the attenuated packets
// are still received and still occupy decoders.
#include "harness.hpp"

#include "phy/antenna.hpp"
#include "phy/sensitivity.hpp"

using namespace alphawan;
using namespace alphawan::bench;

int main() {
  Deployment deployment{Region{Meters{1200}, Meters{1200}}, spectrum_1m6(), quiet_channel()};
  auto& network = deployment.add_network("op");
  auto& gw = network.add_gateway(deployment.next_gateway_id(),
                                 deployment.region().center(),
                                 default_profile());
  gw.apply_channels(
      GatewayChannelConfig{standard_plan(deployment.spectrum(), 0).channels});
  gw.set_antenna(std::make_unique<DirectionalAntenna>(), /*boresight=*/0.0);

  print_header(
      "Fig. 7 — directional antenna (12 dBi, boresight = +x axis)\n"
      "off-axis attenuation vs reception of a DR0 (SF12) node at 400 m");
  std::printf("  %-12s %-16s %-12s %-10s\n", "angle(deg)", "atten(dB)",
              "rx SNR(dB)", "received");

  Rng rng(3);
  PacketIdSource ids;
  ScenarioRunner runner(deployment);
  const Point center = deployment.region().center();
  int received_off_axis = 0;
  int off_axis_count = 0;
  for (int deg = 0; deg <= 180; deg += 30) {
    const double rad = deg * std::numbers::pi / 180.0;
    NodeRadioConfig cfg;
    cfg.channel = deployment.spectrum().grid_channel(deg / 30 % 8);
    cfg.dr = DataRate::kDR0;
    cfg.tx_power = Dbm{14.0};
    const Point pos{Meters{center.x.value() + 400.0 * std::cos(rad)},
                    Meters{center.y.value() + 400.0 * std::sin(rad)}};
    auto& node = network.add_node(deployment.next_node_id(), pos, cfg);
    const Db gain = gw.antenna_gain_towards(pos);
    const Db attenuation = Db{12.0} - gain;
    const Db snr = deployment.mean_snr(node, gw);
    const auto result = runner.run_window(
        {node.make_transmission(Seconds{deg * 10.0}, 10, ids.next())});
    const bool ok = result.total_delivered() == 1;
    if (deg >= 30) {
      ++off_axis_count;
      received_off_axis += ok ? 1 : 0;
    }
    std::printf("  %-12d %-16.1f %-12.1f %-10s\n", deg, attenuation.value(),
                snr.value(), ok ? "yes" : "no");
  }
  print_note("");
  print_row("off-axis attenuation range (dB)", 14.0, 14.0, "to");
  print_row("  ", 40.0, 40.0, "");
  std::printf(
      "  off-axis packets still received: %d/%d (paper: all — directional\n"
      "  antennas cannot keep foreign packets out of the decoders)\n",
      received_off_axis, off_axis_count);
  return 0;
}
