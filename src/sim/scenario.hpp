// ScenarioRunner: the glue that runs one window of traffic through every
// gateway of every coexisting network, feeds the network servers, and
// classifies packet fates. This is the top-level simulation API used by
// benches, examples, and AlphaWAN's measurement loop.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/topology.hpp"

namespace alphawan {

// Optional per-gateway outcome post-processor (hook used by the CIC
// baseline to resolve collisions a stock gateway cannot). Receives the
// events the gateway saw and may rewrite outcome dispositions.
using RxPostProcessor = std::function<void(
    const Gateway& gw, const std::vector<RxEvent>& events,
    std::vector<RxOutcome>& outcomes)>;

struct WindowResult {
  // Fate of every offered packet (across all networks).
  std::vector<PacketFate> fates;
  // Delivered unique packets per network in this window.
  std::map<NetworkId, std::size_t> delivered;
  std::map<NetworkId, std::size_t> offered;
  // Distinct nodes served per network.
  std::map<NetworkId, std::size_t> served_nodes;

  [[nodiscard]] std::size_t total_delivered() const;
  [[nodiscard]] std::size_t total_offered() const;
};

class ScenarioRunner {
 public:
  explicit ScenarioRunner(Deployment& deployment, std::uint64_t seed = 7);

  // Transmissions weaker than noise_floor - margin at a gateway are
  // dropped from that gateway's event list (they can neither be received
  // nor meaningfully interfere).
  void set_prune_margin(Db margin) { prune_margin_ = margin; }
  void set_post_processor(RxPostProcessor proc) { post_ = std::move(proc); }

  // Run one window. Transmissions may belong to any network in the
  // deployment; every gateway observes every transmission in range
  // (including foreign ones — that is the point of the paper).
  WindowResult run_window(const std::vector<Transmission>& txs);

  // Convenience: run a window and add each fate to `metrics`.
  WindowResult run_window(const std::vector<Transmission>& txs,
                          MetricsCollector& metrics);

 private:
  Deployment& deployment_;
  Rng rng_;
  Db prune_margin_ = 25.0;
  RxPostProcessor post_;
};

}  // namespace alphawan
