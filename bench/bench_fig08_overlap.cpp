// Figure 8 reproduction: packet reception of a master link vs the channel
// overlap ratio with an interfering link, for weak/strong interferers and
// orthogonal/non-orthogonal data rates. Calibration target (paper):
// >40% misalignment (overlap < 0.6) keeps PRR > 80% even for strong
// non-orthogonal interferers; orthogonal DRs survive almost any overlap.
#include "harness.hpp"

#include "net/sync_word.hpp"
#include "radio/gateway_radio.hpp"
#include "phy/sensitivity.hpp"

using namespace alphawan;
using namespace alphawan::bench;

namespace {

constexpr int kTrials = 60;

double prr_at_overlap(double overlap, Db interferer_delta, bool orthogonal,
                      Rng& rng) {
  const Spectrum spec = spectrum_1m6();
  int ok = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    GatewayRadio radio(default_profile(), 0, kPublicSyncWord);
    radio.configure_channels({spec.grid_channel(0)});

    // Master link: DR4 (SF8) with a modest 5 dB margin over its threshold
    // (a realistic mid-cell link) plus small per-trial fading.
    Transmission wanted;
    wanted.id = 1;
    wanted.node = 1;
    wanted.channel = spec.grid_channel(0);
    wanted.params.sf = SpreadingFactor::kSF8;
    wanted.start = Seconds{0.0};
    const Dbm noise = noise_floor_dbm(kLoRaBandwidth125k);
    const Dbm wanted_power = noise + demod_snr_threshold(wanted.params.sf) +
                             Db{5.0 + rng.uniform(-0.5, 0.5)};

    Transmission interferer = wanted;
    interferer.id = 2;
    interferer.node = 2;
    interferer.network = 1;  // another operator
    interferer.sync_word = sync_word_for_network(1);
    interferer.params.sf =
        orthogonal ? SpreadingFactor::kSF10 : SpreadingFactor::kSF8;
    interferer.channel.center += (1.0 - overlap) * kLoRaBandwidth125k;
    const Dbm interferer_power =
        wanted_power + interferer_delta + Db{rng.uniform(-0.5, 0.5)};

    const auto outcomes = radio.process(
        {RxEvent{wanted, wanted_power}, RxEvent{interferer, interferer_power}});
    if (outcomes[0].disposition == RxDisposition::kDelivered) ++ok;
  }
  return static_cast<double>(ok) / kTrials;
}

}  // namespace

int main() {
  print_header(
      "Fig. 8 — master-link PRR vs channel overlap ratio\n"
      "(DR4 master link with 5 dB margin; interferer weak = +8 dB,\n"
      "strong = +20 dB relative to the master)");
  std::printf("  %-9s %-16s %-16s %-16s %-16s\n", "overlap", "weak/orth",
              "strong/orth", "weak/non-orth", "strong/non-orth");
  Rng rng(8);
  for (double overlap = 0.0; overlap <= 1.001; overlap += 0.1) {
    const double weak_orth = prr_at_overlap(overlap, Db{8.0}, true, rng);
    const double strong_orth = prr_at_overlap(overlap, Db{20.0}, true, rng);
    const double weak_non = prr_at_overlap(overlap, Db{8.0}, false, rng);
    const double strong_non = prr_at_overlap(overlap, Db{20.0}, false, rng);
    std::printf("  %-9.1f %-16.2f %-16.2f %-16.2f %-16.2f\n", overlap,
                weak_orth, strong_orth, weak_non, strong_non);
  }
  print_note(
      "paper anchors: PRR > 0.8 for overlap <= 0.6 even non-orthogonal;\n"
      "  orthogonal DRs tolerate large overlaps; strong non-orthogonal\n"
      "  interferers fail first as overlap grows");
  return 0;
}
