#include "backhaul/bus.hpp"

#include <utility>

#include "backhaul/faults.hpp"

namespace alphawan {

void MessageBus::attach(const EndpointId& id, Handler handler) {
  handlers_[id] = std::move(handler);
}

void MessageBus::detach(const EndpointId& id) { handlers_.erase(id); }

void MessageBus::set_down(const EndpointId& id, bool down) {
  if (down) {
    down_.insert(id);
  } else {
    down_.erase(id);
  }
}

void MessageBus::send(const EndpointId& from, const EndpointId& to,
                      std::vector<std::uint8_t> payload, bool wan) {
  ++stats_.messages;
  stats_.bytes += payload.size();
  if (down_.contains(from)) {
    // A crashed endpoint cannot transmit.
    ++stats_.dropped;
    return;
  }
  const Seconds delay = wan ? latency_.wan_one_way()
                            : latency_.lan_transfer(payload.size());
  if (faults_ != nullptr) {
    faults_->route(from, to, delay, std::move(payload));
    return;
  }
  schedule_delivery(from, to, delay, std::move(payload));
}

void MessageBus::schedule_delivery(const EndpointId& from,
                                   const EndpointId& to, Seconds delay,
                                   std::vector<std::uint8_t> payload) {
  engine_.schedule_in(
      delay, [this, from, to, data = std::move(payload)]() mutable {
        // Attachment and liveness are evaluated when the delivery event
        // fires: an endpoint detached or crashed while the message was in
        // flight drops it (counted), even if it later re-attaches.
        const auto it = handlers_.find(to);
        if (it == handlers_.end() || down_.contains(to)) {
          ++stats_.dropped;
          return;
        }
        it->second(from, std::move(data));
      });
}

}  // namespace alphawan
