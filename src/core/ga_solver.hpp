// Evolutionary solver for the CP problem (paper Sec. 4.3.1 runs an
// evolutionary algorithm on a central server). Tournament selection,
// per-gateway / per-node uniform crossover, repair-based feasibility, and
// greedy seeding. Deterministic under a fixed seed, at any thread count:
// all random draws happen while offspring are constructed serially, and
// fitness evaluation — a pure function per individual — is what fans out
// across the parallel executor (docs/parallelism.md).
#pragma once

#include <optional>

#include "core/cp_problem.hpp"
#include "core/greedy_seed.hpp"

namespace alphawan {

// Strategy 7 node-side disabled: node genes are pinned to this solution,
// which also seeds the population. Wrapping the solution (rather than a
// bool next to an optional) makes "frozen but no solution" unrepresentable.
struct FrozenNodes {
  CpSolution solution;
};

// The pragma pair around the struct keeps GaConfig's synthesized
// copy/move members from tripping the deprecation warning on the
// freeze_nodes shim below; explicit reads/writes in caller code still do.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
struct GaConfig {
  int population = 32;
  int generations = 80;
  int tournament = 3;
  int elites = 2;
  double crossover_rate = 0.9;
  // Per-gene mutation probability for node genes; gateway genes mutate
  // with 10x this rate per gateway.
  double mutation_rate = 0.02;
  std::uint64_t seed = 42;
  // Strategy 1 disabled: force this channel count on every gateway.
  std::optional<int> forced_channel_count;
  // Freeze node genes to frozen_nodes->solution (see FrozenNodes).
  std::optional<FrozenNodes> frozen_nodes;
  // Explicit population seed; node genes still evolve. When unset and
  // frozen_nodes is set, the frozen solution seeds the population.
  std::optional<CpSolution> initial;
  // Stop early once the objective reaches zero (perfect plan).
  bool early_stop = true;
  CpWeights weights{};
  // Worker threads for fitness evaluation: 0 = the ALPHAWAN_THREADS
  // process default, 1 = force serial. Any value yields identical results.
  int threads = 0;

  // Deprecated shim, kept for one release: freeze_nodes + initial was the
  // old way to pin node genes and could express an invalid state at
  // runtime. solve_cp still honors it for external callers.
  [[deprecated("set frozen_nodes instead of freeze_nodes + initial")]]
  bool freeze_nodes = false;
};
#pragma GCC diagnostic pop

struct GaResult {
  CpSolution best;
  CpEvaluation best_eval;
  int generations_run = 0;
  std::size_t evaluations = 0;
};

[[nodiscard]] GaResult solve_cp(const CpInstance& instance,
                                const GaConfig& config = GaConfig{});

}  // namespace alphawan
