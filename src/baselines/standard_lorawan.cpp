#include "baselines/standard_lorawan.hpp"

#include <algorithm>

#include "phy/sensitivity.hpp"

namespace alphawan {

void StandardLorawanPolicy::configure(Deployment& deployment,
                                      Network& network, Rng& rng) const {
  const StandardLorawanOptions& options = options_;
  const Spectrum& spectrum = deployment.spectrum();

  // Gateways: homogeneous standard plans.
  std::vector<GatewayId> gw_ids;
  gw_ids.reserve(network.gateways().size());
  for (const auto& gw : network.gateways()) gw_ids.push_back(gw.id());
  NetworkChannelConfig config = homogeneous_standard_config(
      spectrum, gw_ids, options.spread_gateways_across_plans);

  if (!options.configure_nodes) {
    network.apply_config(config);
    return;
  }

  // Nodes: random channel among those the network's gateways actually
  // monitor (users join the operator's channel plan); DR0 without ADR, or
  // the greedy standard-ADR data rate with ADR.
  std::vector<Channel> channels;
  for (const auto& [gw_id, gw_cfg] : config.gateways) {
    for (const auto& ch : gw_cfg.channels) {
      if (std::find(channels.begin(), channels.end(), ch) == channels.end()) {
        channels.push_back(ch);
      }
    }
  }
  if (channels.empty()) channels = spectrum.grid_channels();
  for (auto& node : network.nodes()) {
    NodeRadioConfig cfg = node.config();
    cfg.channel = channels[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(channels.size()) - 1))];
    cfg.tx_power = kDefaultTxPower;
    if (options.use_adr) {
      // Emulate converged standard ADR: best mean SNR across gateways,
      // then step DR up / power down with the installation margin.
      Db best{-1e9};
      for (const auto& gw : network.gateways()) {
        best = std::max(best, deployment.mean_snr(node, gw));
      }
      LinkProfile profile;
      profile.uplinks = 1;
      profile.gateway_snr[0] = best;
      cfg.dr = DataRate::kDR0;
      const auto adapted = standard_adr(cfg, profile, options.adr);
      if (adapted) cfg = *adapted;
    } else {
      cfg.dr = DataRate::kDR0;  // join default: maximum range
    }
    config.nodes[node.id()] = cfg;
  }
  network.apply_config(config);
}

}  // namespace alphawan
