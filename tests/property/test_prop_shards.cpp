// Property: spatial sharding is bit-identical to the monolithic engine.
// For random worlds, the ordered fate stream of a window (its FNV-1a
// digest) must not depend on the shard count — alone or composed with any
// thread count — and a boundary node's audible-shard set must cover every
// shard holding one of its candidate gateways, so no reception can be lost
// at a stripe border (docs/sharding.md).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "check/digest.hpp"
#include "phy/sensitivity.hpp"
#include "proptest.hpp"

namespace alphawan {
namespace {

using prop::CaseParams;

std::uint64_t window_digest(const CaseParams& params, int threads,
                            int shards) {
  prop::World world = prop::build_world(params);
  RunOptions options;
  options.threads = threads;
  options.shards = shards;
  ScenarioRunner runner(*world.deployment, params.seed, options);
  return fate_digest(runner.run_window(world.txs).fates);
}

TEST(ShardDeterminism, WindowDigestIdenticalAcrossShardCounts) {
  CaseParams lo;
  lo.networks = 1;
  lo.gateways_per_net = 1;
  lo.nodes_per_net = 4;
  lo.plan_channels = 2;
  lo.decoders = 4;
  CaseParams hi;
  hi.networks = 3;
  hi.gateways_per_net = 4;
  hi.nodes_per_net = 40;
  hi.plan_channels = 8;
  hi.decoders = 16;
  prop::check_property(
      "window digest is shard-count invariant", /*cases=*/50,
      /*seed=*/20260808, lo, hi,
      [](const CaseParams& params) -> std::optional<std::string> {
        const std::uint64_t mono = window_digest(params, /*threads=*/1,
                                                 /*shards=*/1);
        for (const int shards : {2, 8}) {
          for (const int threads : {1, 8}) {
            const std::uint64_t sharded =
                window_digest(params, threads, shards);
            if (sharded != mono) {
              return "digest " + digest_hex(sharded) + " at shards=" +
                     std::to_string(shards) + " threads=" +
                     std::to_string(threads) + " != monolithic digest " +
                     digest_hex(mono);
            }
          }
        }
        return std::nullopt;
      });
}

TEST(ShardDeterminism, SameSeedReplaysIdenticallyUnderSharding) {
  CaseParams lo;
  lo.networks = 1;
  lo.gateways_per_net = 1;
  lo.nodes_per_net = 4;
  lo.plan_channels = 2;
  lo.decoders = 4;
  CaseParams hi;
  hi.networks = 2;
  hi.gateways_per_net = 3;
  hi.nodes_per_net = 24;
  hi.plan_channels = 8;
  hi.decoders = 16;
  prop::check_property(
      "same-seed window replays identically under sharding", /*cases=*/20,
      /*seed=*/20260809, lo, hi,
      [](const CaseParams& params) -> std::optional<std::string> {
        for (const int shards : {2, 8}) {
          const std::uint64_t first = window_digest(params, /*threads=*/8,
                                                    shards);
          const std::uint64_t replay = window_digest(params, /*threads=*/8,
                                                     shards);
          if (first != replay) {
            return "replay digest " + digest_hex(replay) + " at shards=" +
                   std::to_string(shards) + " != first run " +
                   digest_hex(first);
          }
        }
        return std::nullopt;
      });
}

// Candidate gateway ids of every transmitter in a monolithic cache,
// registered the way the runner does it.
std::map<NodeId, std::set<GatewayId>> monolithic_candidates(
    prop::World& world, Dbm floor) {
  auto& caches = world.deployment->shard_caches(1);
  LinkCache& cache = caches.slice(0);
  std::vector<GatewayId> column_ids;
  for (auto& network : world.deployment->networks()) {
    for (auto& gw : network.gateways()) column_ids.push_back(gw.id());
  }
  std::map<NodeId, std::set<GatewayId>> candidates;
  for (const auto& tx : world.txs) {
    const std::uint32_t row = cache.ensure_row(tx.node, tx.origin);
    auto& set = candidates[tx.node];
    for (const std::uint32_t col :
         cache.candidate_columns(row, floor, kMaxTxPower)) {
      set.insert(column_ids[col]);
    }
  }
  return candidates;
}

TEST(ShardDeterminism, BoundaryAudibilityCoversEveryCandidateShard) {
  CaseParams lo;
  lo.networks = 1;
  lo.gateways_per_net = 1;
  lo.nodes_per_net = 4;
  lo.plan_channels = 2;
  lo.decoders = 4;
  CaseParams hi;
  hi.networks = 3;
  hi.gateways_per_net = 4;
  hi.nodes_per_net = 32;
  hi.plan_channels = 8;
  hi.decoders = 16;
  prop::check_property(
      "audible-shard set is a superset of the candidate-gateway shards",
      /*cases=*/25, /*seed=*/20260810, lo, hi,
      [](const CaseParams& params) -> std::optional<std::string> {
        const Dbm floor =
            noise_floor_dbm(kLoRaBandwidth125k) - RunOptions{}.prune_margin;
        // Ground truth from a monolithic cache on a fresh world.
        prop::World mono_world = prop::build_world(params);
        const auto candidates = monolithic_candidates(mono_world, floor);

        // Sharded run on an identically built world: the runner registers
        // each transmitter only where audible.
        const int shards = 4;
        prop::World world = prop::build_world(params);
        RunOptions options;
        options.shards = shards;
        ScenarioRunner runner(*world.deployment, params.seed, options);
        (void)runner.run_window(world.txs);
        auto& caches = world.deployment->shard_caches(shards);
        const ShardLayout layout = world.deployment->shard_layout(shards);

        for (auto& network : world.deployment->networks()) {
          for (auto& gw : network.gateways()) {
            const auto home =
                static_cast<std::size_t>(layout.shard_of(gw.position()));
            for (const auto& [node, gws] : candidates) {
              if (!gws.contains(gw.id())) continue;
              // This gateway is a candidate for the node, so the node must
              // be resident in the gateway's shard slice.
              if (caches.slice(home).row_of(node) == LinkCache::kInvalidRow) {
                return "node " + std::to_string(node) +
                       " missing from shard " + std::to_string(home) +
                       " holding candidate gateway " + std::to_string(gw.id());
              }
            }
          }
        }
        return std::nullopt;
      });
}

}  // namespace
}  // namespace alphawan
