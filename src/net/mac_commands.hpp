// LoRaWAN MAC commands (spec 1.0.x, Sec. 5) — the mechanism AlphaWAN uses
// to push node-side configuration without touching firmware: LinkADRReq
// carries data-rate/power/channel-mask updates, NewChannelReq defines the
// (possibly grid-misaligned) channel frequencies of an assigned plan, and
// DevStatusReq/Ans feeds link margins back into the planner.
//
// Commands travel piggybacked in FOpts (<=15 bytes) or in an FPort-0
// payload; this codec parses/serializes those byte streams.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "phy/lora_params.hpp"

namespace alphawan {

enum class MacCid : std::uint8_t {
  kLinkCheckReq = 0x02,   // uplink
  kLinkCheckAns = 0x02,   // downlink
  kLinkAdrReq = 0x03,     // downlink
  kLinkAdrAns = 0x03,     // uplink
  kDutyCycleReq = 0x04,   // downlink
  kDutyCycleAns = 0x04,   // uplink
  kDevStatusReq = 0x06,   // downlink
  kDevStatusAns = 0x06,   // uplink
  kNewChannelReq = 0x07,  // downlink
  kNewChannelAns = 0x07,  // uplink
};

// ---- downlink commands (server -> device) ---------------------------------

struct LinkAdrReq {
  std::uint8_t data_rate = 0;   // DR index 0..5
  std::uint8_t tx_power = 0;    // TXPower index 0..7
  std::uint16_t ch_mask = 0;    // 16-channel enable mask
  std::uint8_t ch_mask_cntl = 0;
  std::uint8_t nb_trans = 1;

  friend bool operator==(const LinkAdrReq&, const LinkAdrReq&) = default;
};

struct DutyCycleReq {
  std::uint8_t max_duty_cycle = 0;  // limit = 1 / 2^n

  friend bool operator==(const DutyCycleReq&, const DutyCycleReq&) = default;
};

struct DevStatusReq {
  friend bool operator==(const DevStatusReq&, const DevStatusReq&) = default;
};

struct NewChannelReq {
  std::uint8_t ch_index = 0;
  Hz frequency{0.0};          // encoded as 24-bit freq / 100 Hz
  std::uint8_t min_dr = 0;
  std::uint8_t max_dr = 5;

  friend bool operator==(const NewChannelReq& a, const NewChannelReq& b) {
    // Frequency survives the 100 Hz wire granularity.
    return a.ch_index == b.ch_index && a.min_dr == b.min_dr &&
           a.max_dr == b.max_dr &&
           abs(a.frequency - b.frequency) < Hz{100.0};
  }
};

// ---- uplink commands (device -> server) ------------------------------------

struct LinkAdrAns {
  bool channel_mask_ack = true;
  bool data_rate_ack = true;
  bool power_ack = true;

  friend bool operator==(const LinkAdrAns&, const LinkAdrAns&) = default;
};

struct DutyCycleAns {
  friend bool operator==(const DutyCycleAns&, const DutyCycleAns&) = default;
};

struct DevStatusAns {
  std::uint8_t battery = 255;  // 255 = unknown/external power
  std::int8_t margin = 0;      // demod margin of last DevStatusReq, dB

  friend bool operator==(const DevStatusAns&, const DevStatusAns&) = default;
};

struct NewChannelAns {
  bool freq_ok = true;
  bool dr_ok = true;

  friend bool operator==(const NewChannelAns&, const NewChannelAns&) = default;
};

using DownlinkMacCommand =
    std::variant<LinkAdrReq, DutyCycleReq, DevStatusReq, NewChannelReq>;
using UplinkMacCommand =
    std::variant<LinkAdrAns, DutyCycleAns, DevStatusAns, NewChannelAns>;

// Serialize command lists to the FOpts byte stream.
[[nodiscard]] std::vector<std::uint8_t> encode_downlink_commands(
    std::span<const DownlinkMacCommand> commands);
[[nodiscard]] std::vector<std::uint8_t> encode_uplink_commands(
    std::span<const UplinkMacCommand> commands);

// Parse an FOpts byte stream; returns nullopt on any malformed/truncated
// command (the spec requires discarding the remainder).
[[nodiscard]] std::optional<std::vector<DownlinkMacCommand>>
decode_downlink_commands(std::span<const std::uint8_t> bytes);
[[nodiscard]] std::optional<std::vector<UplinkMacCommand>>
decode_uplink_commands(std::span<const std::uint8_t> bytes);

// ---- AlphaWAN integration ---------------------------------------------------

// Translate a node radio-config change into the MAC commands a LoRaWAN
// server would enqueue: a NewChannelReq when the target channel is not yet
// defined at `ch_index`, plus a LinkAdrReq selecting the channel/DR/power.
struct NodeConfigCommands {
  std::vector<DownlinkMacCommand> commands;
  std::size_t bytes = 0;  // wire size (for downlink budgeting)
};

[[nodiscard]] NodeConfigCommands commands_for_config_change(
    const struct NodeRadioConfig& current, const struct NodeRadioConfig& next,
    std::uint8_t ch_index);

// TXPower ladder index for a dBm setting (nearest step at or below).
[[nodiscard]] std::uint8_t tx_power_index(Dbm dbm);
[[nodiscard]] Dbm tx_power_from_index(std::uint8_t index);

}  // namespace alphawan
