// Chaos property suite (the headline test of the fault-injection layer,
// docs/robustness.md): random control-plane worlds crossed with random
// FaultPlans. Properties:
//   (a) no crashes / UB under any fault mix (this binary runs in the
//       ASan and TSan CI jobs);
//   (b) with retries enabled, every live operator converges to the
//       Master's plan within a bounded number of refresh rounds;
//   (c) faults off => behaviour identical to no injector at all (the
//       canonical golden digests in test_golden_digest.cpp stay valid);
//   (d) the same (world seed, FaultPlan) always replays to the same
//       digest — chaos itself is deterministic.
#include <cstring>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "backhaul/faults.hpp"
#include "core/master.hpp"

namespace alphawan {
namespace {

// FNV-1a over the full observable outcome of a chaos run: client state,
// client/injector/bus counters. Any nondeterminism anywhere in the
// bus/injector/retry stack shows up as a digest mismatch.
struct ChaosDigest {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  void mix_double(double d) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  }
};

struct ChaosCase {
  int operators = 2;
  FaultPlan plan;
  std::uint64_t world_seed = 1;
};

std::string describe(const ChaosCase& c) {
  std::ostringstream out;
  out << "{operators=" << c.operators << " seed=" << c.world_seed
      << " fault_seed=" << c.plan.seed
      << " drop=" << c.plan.everywhere.drop_prob
      << " dup=" << c.plan.everywhere.duplicate_prob
      << " delay=" << c.plan.everywhere.delay_prob
      << " trunc=" << c.plan.everywhere.truncate_prob
      << " corrupt=" << c.plan.everywhere.corrupt_prob
      << " rules=" << c.plan.rules.size()
      << " outages=" << c.plan.outages.size() << "}";
  return out.str();
}

ChaosCase random_case(Rng& meta) {
  ChaosCase c;
  c.operators = static_cast<int>(meta.uniform_int(1, 5));
  c.world_seed = meta.next();
  c.plan.seed = meta.next();
  // Capped well below 1 so round trips succeed with decent probability
  // even when several specs compound — unbounded retries then terminate
  // quickly in expectation.
  c.plan.everywhere.drop_prob = meta.uniform(0.0, 0.3);
  c.plan.everywhere.duplicate_prob = meta.uniform(0.0, 0.3);
  c.plan.everywhere.delay_prob = meta.uniform(0.0, 0.35);
  c.plan.everywhere.truncate_prob = meta.uniform(0.0, 0.2);
  c.plan.everywhere.corrupt_prob = meta.uniform(0.0, 0.25);
  const int rules = static_cast<int>(meta.uniform_int(0, 3));
  for (int r = 0; r < rules; ++r) {
    FaultRule rule;
    const auto victim = meta.uniform_int(0, c.operators);  // 0 = master
    rule.endpoint = victim == 0
                        ? MasterService::endpoint()
                        : "operator-" + std::to_string(victim);
    rule.direction =
        meta.chance(0.5) ? FaultDirection::kTx : FaultDirection::kRx;
    rule.spec.drop_prob = meta.uniform(0.0, 0.35);
    rule.spec.corrupt_prob = meta.uniform(0.0, 0.3);
    c.plan.rules.push_back(rule);
  }
  const int outages = static_cast<int>(meta.uniform_int(0, 2));
  for (int o = 0; o < outages; ++o) {
    OutageSpec outage;
    const auto victim = meta.uniform_int(0, c.operators);
    outage.endpoint = victim == 0
                          ? MasterService::endpoint()
                          : "operator-" + std::to_string(victim);
    outage.start = Seconds{meta.uniform(0.0, 2.0)};
    outage.duration = Seconds{meta.uniform(0.1, 3.0)};
    c.plan.outages.push_back(outage);
  }
  return c;
}

struct ChaosOutcome {
  std::uint64_t digest = 0;
  int rounds_used = 0;
  bool converged = false;
};

// Build the control-plane world (Master + N hardened OperatorClients over
// a faulty bus), drive it to convergence in refresh rounds, and digest
// everything observable.
ChaosOutcome run_chaos(const ChaosCase& c, bool with_injector = true) {
  const Spectrum spectrum{Hz{923.2e6}, Hz{1.6e6}};
  Engine engine;
  LatencyModel latency{LatencyModelConfig{}, c.world_seed};
  MessageBus bus(engine, latency);
  MasterNode master(MasterConfig{spectrum, 0.4, c.operators});
  MasterService service(master, bus);

  std::vector<std::unique_ptr<OperatorClient>> clients;
  for (int i = 1; i <= c.operators; ++i) {
    clients.push_back(std::make_unique<OperatorClient>(
        static_cast<NetworkId>(i), "op-" + std::to_string(i), bus));
  }
  std::optional<FaultInjector> injector;
  if (with_injector) {
    injector.emplace(bus, c.plan);
    // Reconnect semantics: an operator that comes back from an outage
    // re-requests its plan (never trusts possibly-stale state).
    injector->set_restart_hook([&](const EndpointId& ep) {
      for (auto& client : clients) {
        if (client->endpoint() == ep) client->refresh();
      }
    });
    injector->arm_outages();
  }

  ChaosOutcome outcome;
  // Round 1 starts every exchange concurrently; later rounds refresh any
  // client whose plan predates the final epoch (registrations during
  // round 1 advance it). RetryPolicy retries without bound inside a
  // round, so each engine.run() drains only once every exchange settled.
  constexpr int kMaxRounds = 6;
  for (auto& client : clients) client->sync(spectrum, 8);
  for (int round = 1; round <= kMaxRounds; ++round) {
    engine.run();
    outcome.rounds_used = round;
    bool all_current = true;
    for (auto& client : clients) {
      if (!client->has_plan() ||
          client->plan_epoch() != master.current_epoch()) {
        all_current = false;
        client->refresh();
      }
    }
    if (all_current) {
      outcome.converged = true;
      break;
    }
  }

  ChaosDigest digest;
  digest.mix(master.current_epoch());
  for (const auto& client : clients) {
    digest.mix(client->registered() ? 1 : 0);
    digest.mix(client->has_plan() ? 1 : 0);
    digest.mix(client->plan_epoch());
    if (client->has_plan()) {
      digest.mix_double(client->plan().frequency_offset.value());
      digest.mix(client->plan().channels.size());
    }
    const auto& s = client->stats();
    for (const std::size_t v : {s.sends, s.timeouts, s.retries, s.gave_up,
                                s.duplicates_ignored, s.stale_plans_ignored,
                                s.malformed_ignored, s.errors_received}) {
      digest.mix(v);
    }
  }
  digest.mix(bus.stats().messages);
  digest.mix(bus.stats().bytes);
  digest.mix(bus.stats().dropped);
  // Fault-action counters only (not messages_seen): all zero for an empty
  // plan, so an attached-but-inert injector digests identically to no
  // injector at all — which is exactly property (c).
  const FaultStats fs = injector ? injector->stats() : FaultStats{};
  for (const std::size_t v : {fs.dropped, fs.duplicated, fs.delayed,
                              fs.truncated, fs.corrupted, fs.crashes,
                              fs.restarts}) {
    digest.mix(v);
  }
  digest.mix_double(engine.now().value());
  outcome.digest = digest.h;

  // Convergence must mean agreement with the Master, not just "has a
  // plan": every client's offset is the Master's current answer.
  if (outcome.converged) {
    for (std::size_t i = 0; i < clients.size(); ++i) {
      const auto want = master.offset_of(static_cast<NetworkId>(i + 1));
      if (!want || clients[i]->plan().frequency_offset != *want) {
        outcome.converged = false;
      }
    }
  }
  return outcome;
}

TEST(ChaosProperty, RandomWorldsSurviveAndConvergeAndReplay) {
  Rng meta(20260806);
  constexpr int kCases = 200;
  for (int i = 0; i < kCases; ++i) {
    const ChaosCase c = random_case(meta);
    // (a) survives: any crash/UB aborts the test (sanitizer jobs run this).
    const ChaosOutcome first = run_chaos(c);
    // (b) bounded convergence with unlimited retries.
    EXPECT_TRUE(first.converged)
        << "case " << i << " failed to converge within 6 rounds: "
        << describe(c);
    // (d) same (seed, FaultPlan) => same digest, bit for bit.
    const ChaosOutcome replay = run_chaos(c);
    EXPECT_EQ(first.digest, replay.digest)
        << "case " << i << " replay diverged: " << describe(c);
    EXPECT_EQ(first.rounds_used, replay.rounds_used) << describe(c);
  }
}

TEST(ChaosProperty, EmptyPlanBehavesExactlyLikeNoInjector) {
  // (c) faults off: the injector's passthrough path must be observably
  // identical to the branch-only fast path with no injector attached.
  Rng meta(7);
  for (int i = 0; i < 20; ++i) {
    ChaosCase c;
    c.operators = static_cast<int>(meta.uniform_int(1, 5));
    c.world_seed = meta.next();
    c.plan = FaultPlan{};  // no message faults, no outages
    const auto with = run_chaos(c, /*with_injector=*/true);
    const auto without = run_chaos(c, /*with_injector=*/false);
    EXPECT_TRUE(with.converged && without.converged);
    EXPECT_EQ(with.digest, without.digest) << "operators=" << c.operators;
    EXPECT_EQ(with.rounds_used, without.rounds_used);
  }
}

TEST(ChaosProperty, DifferentFaultSeedsDiverge) {
  // Sanity: the fault seed actually steers the chaos (otherwise the
  // replay property would be vacuous).
  Rng meta(11);
  ChaosCase c = random_case(meta);
  c.plan.everywhere.drop_prob = 0.3;  // ensure faults bite
  const auto a = run_chaos(c);
  c.plan.seed ^= 0x9E3779B97F4A7C15ull;
  const auto b = run_chaos(c);
  EXPECT_NE(a.digest, b.digest);
}

}  // namespace
}  // namespace alphawan
