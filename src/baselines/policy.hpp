// Pluggable node-side MAC policy: everything a coexistence scheme decides
// on the transmitter side — gateway/node provisioning (channel plans, data
// rates) and per-window schedule shaping (deferral, slotting).
//
// Together with radio/capture_policy.hpp this is the whole surface a new
// baseline needs: a NodeMacPolicy for when/where nodes transmit, a
// CapturePolicy for how overlapping receptions resolve at the gateway, and
// a registry entry (baselines/registry.hpp) binding the pair to a name.
// See docs/baselines.md for the add-a-scheme walkthrough.
//
// Determinism contract: policies hold no mutable state, and every random
// decision draws either from the caller-provided Rng (sequential MAC
// decisions, replayed by seeding the same stream) or from named substreams
// derived from it (per-node identities that must survive reordering).
#pragma once

#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "radio/transmission.hpp"
#include "sim/topology.hpp"

namespace alphawan {

class NodeMacPolicy {
 public:
  virtual ~NodeMacPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  // Provision the network the way this scheme's operator would: gateway
  // channel configurations and node channels / data rates / powers.
  // Called once per experiment, before traffic generation, so the shaped
  // node configs feed airtime and traffic models. Default: leave the
  // deployment untouched.
  virtual void configure(Deployment& deployment, Network& network,
                         Rng& rng) const;

  // Rewrite one window's schedule (same packets, possibly moved starts):
  // carrier-sense deferral, slot alignment, backoff. Runs on the global
  // transmission list before ScenarioRunner::run_window, so shard and
  // thread counts cannot influence it. Default: identity.
  [[nodiscard]] virtual std::vector<Transmission> shape_window(
      std::vector<Transmission> txs, Rng& rng) const;

 protected:
  NodeMacPolicy() = default;
  NodeMacPolicy(const NodeMacPolicy&) = default;
  NodeMacPolicy& operator=(const NodeMacPolicy&) = default;
};

}  // namespace alphawan
