#include "backhaul/forwarder.hpp"

namespace alphawan {
namespace {

void encode_uplink(BufferWriter& w, const UplinkRecord& rec) {
  w.u64(rec.packet);
  w.u32(rec.node);
  w.u32(rec.gateway);
  w.u16(rec.network);
  w.f64(rec.timestamp.value());
  w.f64(rec.channel.center.value());
  w.f64(rec.channel.bandwidth.value());
  w.u8(static_cast<std::uint8_t>(dr_value(rec.dr)));
  w.f64(rec.snr.value());
}

std::optional<UplinkRecord> decode_uplink(BufferReader& r) {
  UplinkRecord rec;
  const auto packet = r.u64();
  const auto node = r.u32();
  const auto gateway = r.u32();
  const auto network = r.u16();
  const auto timestamp = r.f64();
  const auto center = r.f64();
  const auto bandwidth = r.f64();
  const auto dr = r.u8();
  const auto snr = r.f64();
  if (!r.ok() || !dr || *dr >= kNumDataRates) return std::nullopt;
  rec.packet = *packet;
  rec.node = *node;
  rec.gateway = *gateway;
  rec.network = static_cast<NetworkId>(*network);
  rec.timestamp = Seconds{*timestamp};
  rec.channel = Channel{Hz{*center}, Hz{*bandwidth}};
  rec.dr = static_cast<DataRate>(*dr);
  rec.snr = Db{*snr};
  return rec;
}

}  // namespace

std::vector<std::uint8_t> encode_forwarder(const ForwarderMessage& msg) {
  BufferWriter w;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, PushDataMsg>) {
          w.u8(static_cast<std::uint8_t>(ForwarderOp::kPushData));
          w.u16(m.token);
          w.u32(m.gateway);
          w.u32(static_cast<std::uint32_t>(m.uplinks.size()));
          for (const auto& rec : m.uplinks) encode_uplink(w, rec);
        } else if constexpr (std::is_same_v<T, PushAckMsg>) {
          w.u8(static_cast<std::uint8_t>(ForwarderOp::kPushAck));
          w.u16(m.token);
        } else if constexpr (std::is_same_v<T, PullDataMsg>) {
          w.u8(static_cast<std::uint8_t>(ForwarderOp::kPullData));
          w.u16(m.token);
          w.u32(m.gateway);
        } else if constexpr (std::is_same_v<T, PullRespMsg>) {
          w.u8(static_cast<std::uint8_t>(ForwarderOp::kPullResp));
          w.u16(m.token);
          w.u32(m.gateway);
          w.u32(static_cast<std::uint32_t>(m.channels.size()));
          for (const auto& ch : m.channels) {
            w.f64(ch.center.value());
            w.f64(ch.bandwidth.value());
          }
        } else if constexpr (std::is_same_v<T, PullAckMsg>) {
          w.u8(static_cast<std::uint8_t>(ForwarderOp::kPullAck));
          w.u16(m.token);
        }
      },
      msg);
  return w.take();
}

std::optional<ForwarderMessage> decode_forwarder(
    std::span<const std::uint8_t> payload) {
  BufferReader r(payload);
  const auto op = r.u8();
  if (!op) return std::nullopt;
  switch (static_cast<ForwarderOp>(*op)) {
    case ForwarderOp::kPushData: {
      PushDataMsg m;
      const auto token = r.u16();
      const auto gateway = r.u32();
      const auto count = r.u32();
      if (!token || !gateway || !count || *count > 65536) return std::nullopt;
      m.token = *token;
      m.gateway = *gateway;
      m.uplinks.reserve(*count);
      for (std::uint32_t i = 0; i < *count; ++i) {
        const auto rec = decode_uplink(r);
        if (!rec) return std::nullopt;
        m.uplinks.push_back(*rec);
      }
      if (r.remaining() != 0) return std::nullopt;
      return m;
    }
    case ForwarderOp::kPushAck: {
      const auto token = r.u16();
      if (!token || r.remaining() != 0) return std::nullopt;
      return PushAckMsg{*token};
    }
    case ForwarderOp::kPullData: {
      const auto token = r.u16();
      const auto gateway = r.u32();
      if (!token || !gateway || r.remaining() != 0) return std::nullopt;
      return PullDataMsg{*token, *gateway};
    }
    case ForwarderOp::kPullResp: {
      PullRespMsg m;
      const auto token = r.u16();
      const auto gateway = r.u32();
      const auto count = r.u32();
      if (!token || !gateway || !count || *count > 4096) return std::nullopt;
      m.token = *token;
      m.gateway = *gateway;
      for (std::uint32_t i = 0; i < *count; ++i) {
        const auto center = r.f64();
        const auto bandwidth = r.f64();
        if (!center || !bandwidth) return std::nullopt;
        m.channels.push_back(Channel{Hz{*center}, Hz{*bandwidth}});
      }
      if (r.remaining() != 0) return std::nullopt;
      return m;
    }
    case ForwarderOp::kPullAck: {
      const auto token = r.u16();
      if (!token || r.remaining() != 0) return std::nullopt;
      return PullAckMsg{*token};
    }
  }
  return std::nullopt;
}

// ---- gateway side -----------------------------------------------------------

GatewayForwarder::GatewayForwarder(Gateway& gateway, MessageBus& bus,
                                   EndpointId server)
    : gateway_(gateway), bus_(bus), server_(std::move(server)) {
  bus_.attach(endpoint(), [this](const EndpointId& from,
                                 std::vector<std::uint8_t> payload) {
    on_message(from, std::move(payload));
  });
}

EndpointId GatewayForwarder::endpoint() const {
  return "gw-" + std::to_string(gateway_.id());
}

std::uint16_t GatewayForwarder::push_uplinks(
    std::vector<UplinkRecord> uplinks) {
  PushDataMsg msg;
  msg.token = next_token_++;
  msg.gateway = gateway_.id();
  msg.uplinks = std::move(uplinks);
  pending_push_.insert(msg.token);
  bus_.send(endpoint(), server_, encode_forwarder(msg));
  return msg.token;
}

std::uint16_t GatewayForwarder::pull() {
  PullDataMsg msg{next_token_++, gateway_.id()};
  bus_.send(endpoint(), server_, encode_forwarder(msg));
  return msg.token;
}

void GatewayForwarder::on_message(const EndpointId& /*from*/,
                                  std::vector<std::uint8_t> payload) {
  const auto msg = decode_forwarder(payload);
  if (!msg) return;
  if (const auto* ack = std::get_if<PushAckMsg>(&*msg)) {
    pending_push_.erase(ack->token);
  } else if (const auto* resp = std::get_if<PullRespMsg>(&*msg)) {
    if (resp->gateway != gateway_.id() || resp->channels.empty()) return;
    gateway_.apply_channels(GatewayChannelConfig{resp->channels});
    ++configs_applied_;
    bus_.send(endpoint(), server_,
              encode_forwarder(PullAckMsg{resp->token}));
  }
}

// ---- server side -------------------------------------------------------------

ForwarderServer::ForwarderServer(NetworkServer& server, MessageBus& bus,
                                 EndpointId endpoint)
    : server_(server), bus_(bus), endpoint_(std::move(endpoint)) {
  bus_.attach(endpoint_, [this](const EndpointId& from,
                                std::vector<std::uint8_t> payload) {
    on_message(from, std::move(payload));
  });
}

bool ForwarderServer::push_config(GatewayId gateway,
                                  std::vector<Channel> channels) {
  const auto it = pull_paths_.find(gateway);
  if (it == pull_paths_.end()) return false;
  PullRespMsg msg;
  msg.token = next_token_++;
  msg.gateway = gateway;
  msg.channels = std::move(channels);
  bus_.send(endpoint_, it->second, encode_forwarder(msg));
  return true;
}

void ForwarderServer::on_message(const EndpointId& from,
                                 std::vector<std::uint8_t> payload) {
  const auto msg = decode_forwarder(payload);
  if (!msg) return;
  if (const auto* push = std::get_if<PushDataMsg>(&*msg)) {
    server_.ingest(push->uplinks);
    ++batches_;
    bus_.send(endpoint_, from, encode_forwarder(PushAckMsg{push->token}));
  } else if (const auto* pull = std::get_if<PullDataMsg>(&*msg)) {
    pull_paths_[pull->gateway] = from;
    bus_.send(endpoint_, from, encode_forwarder(PullAckMsg{pull->token}));
  }
  // PullAck: nothing to do (config application is observable at the GW).
}

}  // namespace alphawan
