// Pluggable gateway-side capture policy: how overlapping receptions
// resolve after the stock pipeline ran. The COTS model in
// GatewayRadio::process is the fixed physical baseline (front-end, FCFS
// decoder dispatch, co/inter-SF SIR capture tests); a CapturePolicy is the
// *receiver algorithm* layered on top — CIC sub-band separation, SS5G
// superposition decoding, CurvingLoRa curvature-orthogonal despreading —
// which may rescue packets the stock demodulator lost to collisions.
//
// The decoder budget is the paper's methodology boundary (Sec. 5.2.1): a
// policy may only rewrite outcomes whose packet already HELD a decoder
// (consumed_decoder(disposition) == true). Decoder-contention drops,
// undetected packets, and front-end rejections are off limits — resolving
// a collision does not conjure a free decoder. GatewayRadio enforces this
// contract after every resolve() call.
//
// Policies run inside concurrent per-gateway tasks (docs/parallelism.md):
// resolve() must be const, must not touch state shared across gateways,
// and must be deterministic — any randomness has to derive from the ids
// already present in the events, never from an internal Rng.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "radio/transmission.hpp"

namespace alphawan {

// Everything GatewayRadio exposes to a capture policy about one window:
// per-event columns over every transmission the front-end observed
// (including foreign-network and never-detected ones — their RF energy
// shaped the outcomes). Columnar rather than a vector<RxEvent> so the
// batched pipeline (ALPHAWAN_BATCH, sim/batch.hpp) can hand policies the
// per-event scratch columns it already filled instead of materializing
// wide RxEvent structs per (gateway, window); the scalar pipeline fills
// the same columns from its event list, so both feed policies identical
// values (tests/property/test_prop_kernels.cpp).
struct CaptureContext {
  std::size_t count = 0;                   // events this window
  const Seconds* start = nullptr;          // tx start time
  const Seconds* end = nullptr;            // tx end (start + time_on_air)
  const Channel* channel = nullptr;        // tx channel
  const SpreadingFactor* sf = nullptr;     // tx spreading factor
  const NodeId* node = nullptr;            // transmitting node
  const std::uint16_t* tx_sync = nullptr;  // per-tx sync word
  // The gateway's network sync word: a rescued packet is kDelivered only
  // if its sync word matches, kDecodedForeign otherwise.
  std::uint16_t sync_word = 0;
  // Decoder-pool capacity of this gateway (diagnostic; the budget itself
  // is enforced by the outcome contract above).
  int decoders = 0;
};

// Owned columnar snapshot of an RxEvent list: adapts event-vector call
// sites (the deprecated post-processor shim, unit tests) to the columnar
// CaptureContext. end comes from Transmission::end() — the same pure
// airtime formula the radio memoizes, so values match the in-radio path.
struct CaptureColumns {
  std::vector<Seconds> start;
  std::vector<Seconds> end;
  std::vector<Channel> channel;
  std::vector<SpreadingFactor> sf;
  std::vector<NodeId> node;
  std::vector<std::uint16_t> sync;

  explicit CaptureColumns(const std::vector<RxEvent>& events) {
    start.reserve(events.size());
    end.reserve(events.size());
    channel.reserve(events.size());
    sf.reserve(events.size());
    node.reserve(events.size());
    sync.reserve(events.size());
    for (const auto& ev : events) {
      start.push_back(ev.tx.start);
      end.push_back(ev.tx.end());
      channel.push_back(ev.tx.channel);
      sf.push_back(ev.tx.params.sf);
      node.push_back(ev.tx.node);
      sync.push_back(ev.tx.sync_word);
    }
  }

  [[nodiscard]] CaptureContext context(std::uint16_t sync_word,
                                       int decoders) const {
    return CaptureContext{start.size(),   start.data(), end.data(),
                          channel.data(), sf.data(),    node.data(),
                          sync.data(),    sync_word,    decoders};
  }
};

class CapturePolicy {
 public:
  virtual ~CapturePolicy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  // Rewrite reception outcomes (one per event, same order) for one
  // gateway window. Called at the end of GatewayRadio::process, so
  // rescued deliveries flow through the normal uplink-forwarding path.
  virtual void resolve(const CaptureContext& context,
                       std::vector<RxOutcome>& outcomes) const = 0;

 protected:
  CapturePolicy() = default;
  CapturePolicy(const CapturePolicy&) = default;
  CapturePolicy& operator=(const CapturePolicy&) = default;
};

}  // namespace alphawan
