// Baseline: randomized channel planning (paper Sec. 5.1.1). Follows
// Strategy 1 — each gateway operates a reduced, random number of channels
// — but picks the channels at random instead of optimizing coverage, and
// leaves the node side to standard ADR. Isolates how much of AlphaWAN's
// gain comes from optimization rather than from merely diversifying.
#pragma once

#include "baselines/standard_lorawan.hpp"
#include "sim/topology.hpp"

namespace alphawan {

struct RandomCpOptions {
  int min_channels_per_gateway = 2;
  int max_channels_per_gateway = 4;
};

// Registry scheme "random-cp": standard-ADR node side (unless
// node_side.configure_nodes is false), random contiguous gateway channel
// windows, nodes re-homed onto monitored channels.
class RandomCpPolicy final : public NodeMacPolicy {
 public:
  explicit RandomCpPolicy(RandomCpOptions options = {},
                          StandardLorawanOptions node_side = {})
      : options_(options), node_side_(node_side) {}

  [[nodiscard]] std::string_view name() const override { return "random-cp"; }
  void configure(Deployment& deployment, Network& network,
                 Rng& rng) const override;

  [[nodiscard]] const RandomCpOptions& options() const { return options_; }

 private:
  RandomCpOptions options_;
  StandardLorawanOptions node_side_;
};

// Deprecated free-function entry point, kept one release as a shim over
// RandomCpPolicy (same draws, bit-identical provisioning).
[[deprecated(
    "use RandomCpPolicy (baselines/random_cp.hpp) or the baseline "
    "registry (baselines/registry.hpp)")]]
inline void apply_random_cp(Deployment& deployment, Network& network,
                            Rng& rng,
                            const RandomCpOptions& options = RandomCpOptions{}) {
  RandomCpPolicy(options).configure(deployment, network, rng);
}

}  // namespace alphawan
