#include "phy/antenna.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace alphawan {
namespace {

TEST(Antenna, OmniIsFlat) {
  OmniAntenna omni(Db{2.0});
  EXPECT_DOUBLE_EQ(omni.gain(0.0).value(), 2.0);
  EXPECT_DOUBLE_EQ(omni.gain(1.5).value(), 2.0);
  EXPECT_DOUBLE_EQ(omni.gain(-3.0).value(), 2.0);
}

TEST(Antenna, DirectionalPeakAtBoresight) {
  DirectionalAntenna dir;
  EXPECT_DOUBLE_EQ(dir.gain(0.0).value(), 12.0);
}

TEST(Antenna, DirectionalThreeDbAtBeamEdge) {
  DirectionalAntenna dir;
  const double half = dir.config().beamwidth_rad / 2.0;
  EXPECT_NEAR(dir.gain(half).value(), 12.0 - 3.0, 1e-9);
}

TEST(Antenna, DirectionalAttenuationWithinPaperRange) {
  // The paper measures 14-40 dB attenuation for non-steered directions
  // (Fig. 7). Verify the pattern stays in that envelope outside the lobe.
  DirectionalAntenna dir;
  const double half = dir.config().beamwidth_rad / 2.0;
  for (double a = half + 0.05; a <= std::numbers::pi; a += 0.1) {
    const Db attenuation = Db{12.0} - dir.gain(a);
    EXPECT_GE(attenuation, Db{14.0 - 1e-6}) << "angle " << a;
    EXPECT_LE(attenuation, Db{40.0 + 1e-6}) << "angle " << a;
  }
}

TEST(Antenna, DirectionalBackLobeDeepest) {
  DirectionalAntenna dir;
  EXPECT_NEAR(dir.gain(std::numbers::pi).value(), 12.0 - 40.0, 1e-6);
}

TEST(Antenna, DirectionalSymmetricAndPeriodic) {
  DirectionalAntenna dir;
  EXPECT_DOUBLE_EQ(dir.gain(0.7).value(), dir.gain(-0.7).value());
  EXPECT_NEAR(dir.gain(0.5).value(),
              dir.gain(0.5 + 2 * std::numbers::pi).value(), 1e-9);
}

TEST(Antenna, DirectionalMonotoneRollOff) {
  DirectionalAntenna dir;
  Db prev = dir.gain(0.0);
  for (double a = 0.05; a <= std::numbers::pi; a += 0.05) {
    const Db g = dir.gain(a);
    EXPECT_LE(g, prev + Db{1e-9});
    prev = g;
  }
}

}  // namespace
}  // namespace alphawan
