// Baseline: LMAC-style carrier-sense MAC for LoRa (Gamage et al.,
// SIGCOMM'20). Nodes perform channel-activity detection before
// transmitting and defer while their channel is busy, trading latency for
// fewer RF collisions. Decoder contention is untouched — which is exactly
// why LMAC saturates at ~6k users in Fig. 13.
#pragma once

#include <vector>

#include "baselines/standard_lorawan.hpp"
#include "common/rng.hpp"
#include "radio/transmission.hpp"

namespace alphawan {

struct LmacOptions {
  // Maximum total deferral before a node gives up waiting and transmits
  // anyway (regulatory/application latency bound).
  Seconds max_defer{5.0};
  // Random inter-frame gap inserted after a busy channel clears.
  Seconds min_gap{5e-3};
  Seconds max_gap{30e-3};
  // Carrier sensing range: transmitters farther apart than this cannot
  // hear each other (hidden terminals persist, as in real LMAC).
  Meters sense_range{1500.0};
};

// Registry scheme "lmac": standard-LoRaWAN provisioning (node_side) plus
// carrier-sense deferral applied to every window's schedule.
class LmacPolicy final : public NodeMacPolicy {
 public:
  explicit LmacPolicy(LmacOptions options = {},
                      StandardLorawanOptions node_side = {})
      : options_(options), node_side_(node_side) {}

  [[nodiscard]] std::string_view name() const override { return "lmac"; }
  void configure(Deployment& deployment, Network& network,
                 Rng& rng) const override {
    StandardLorawanPolicy(node_side_).configure(deployment, network, rng);
  }
  [[nodiscard]] std::vector<Transmission> shape_window(
      std::vector<Transmission> txs, Rng& rng) const override;

  [[nodiscard]] const LmacOptions& options() const { return options_; }

 private:
  LmacOptions options_;
  StandardLorawanOptions node_side_;
};

// Deprecated free-function entry point, kept one release as a shim over
// LmacPolicy::shape_window (same draws, bit-identical schedules).
[[deprecated(
    "use LmacPolicy::shape_window (baselines/lmac.hpp) or the baseline "
    "registry (baselines/registry.hpp)")]]
[[nodiscard]] inline std::vector<Transmission> lmac_schedule(
    std::vector<Transmission> txs, Rng& rng,
    const LmacOptions& options = LmacOptions{}) {
  return LmacPolicy(options).shape_window(std::move(txs), rng);
}

}  // namespace alphawan
