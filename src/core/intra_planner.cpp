#include "core/intra_planner.hpp"

#include <algorithm>

#include "phy/sensitivity.hpp"

namespace alphawan {

std::uint8_t IntraPlanner::min_reach_level(Db measured_snr,
                                           Dbm measured_power) const {
  for (int level = 0; level < kNumLevels; ++level) {
    const DataRate dr = level_to_dr(level);
    const Db snr_at_level =
        measured_snr + (level_tx_power(level) - measured_power);
    if (snr_at_level >=
        demod_snr_threshold(dr_to_sf(dr)) + config_.reach_margin) {
      return static_cast<std::uint8_t>(level);
    }
  }
  return kUnreachable;
}

CpInstance IntraPlanner::build_instance(
    const Network& network, const Spectrum& spectrum,
    const LinkEstimates& links,
    const std::map<NodeId, double>& traffic) const {
  CpInstance instance;
  instance.spectrum = spectrum;
  instance.num_channels = spectrum.grid_size();
  instance.pair_capacity.assign(kNumDataRates, config_.pair_capacity);

  for (const auto& gw : network.gateways()) {
    CpGateway cp_gw;
    cp_gw.id = gw.id();
    cp_gw.decoders = gw.profile().decoders;
    cp_gw.max_channels = gw.profile().data_rx_chains;
    cp_gw.max_span_channels = std::max(
        1, static_cast<int>(gw.profile().rx_spectrum / kChannelSpacing));
    instance.gateways.push_back(cp_gw);
  }

  for (const auto& node : network.nodes()) {
    const auto link_it = links.nodes.find(node.id());
    if (link_it == links.nodes.end()) continue;  // never heard: skip
    CpNode cp_node;
    cp_node.id = node.id();
    const auto traffic_it = traffic.find(node.id());
    cp_node.traffic = traffic_it == traffic.end() ? 1.0 : traffic_it->second;
    cp_node.min_level.assign(instance.gateways.size(), kUnreachable);
    for (std::size_t j = 0; j < instance.gateways.size(); ++j) {
      const auto snr_it =
          link_it->second.gateway_snr.find(instance.gateways[j].id);
      if (snr_it == link_it->second.gateway_snr.end()) continue;
      cp_node.min_level[j] =
          min_reach_level(snr_it->second, link_it->second.observed_tx_power);
    }
    instance.nodes.push_back(std::move(cp_node));
  }
  return instance;
}

CpSolution IntraPlanner::snapshot_solution(const Network& network,
                                           const CpInstance& instance) const {
  CpSolution solution = CpSolution::empty_for(instance);
  // Gateways: map current channels to grid indices.
  for (std::size_t j = 0; j < instance.gateways.size(); ++j) {
    const Gateway* gw = network.find_gateway(instance.gateways[j].id);
    auto& chans = solution.gateway_channels[j];
    if (gw != nullptr) {
      for (const auto& ch : gw->channels()) {
        const int idx = instance.spectrum.nearest_grid_index(ch.center);
        if (idx >= 0 && idx < instance.num_channels) chans.push_back(idx);
      }
    }
    if (chans.empty()) chans.push_back(0);
  }
  for (std::size_t i = 0; i < instance.nodes.size(); ++i) {
    const EndNode* node = network.find_node(instance.nodes[i].id);
    if (node == nullptr) continue;
    const int idx =
        instance.spectrum.nearest_grid_index(node->config().channel.center);
    solution.node_channel[i] =
        std::clamp(idx, 0, instance.num_channels - 1);
    solution.node_level[i] = dr_to_level(node->config().dr);
  }
  repair(instance, solution);
  return solution;
}

PlanOutcome IntraPlanner::plan(const Network& network, const Spectrum& spectrum,
                               const LinkEstimates& links,
                               const std::map<NodeId, double>& traffic,
                               Hz frequency_offset) const {
  PlanOutcome outcome;
  outcome.instance = build_instance(network, spectrum, links, traffic);

  GaConfig ga = config_.ga;
  if (!config_.strategy1_adapt_channel_count) {
    // Strategy 1 disabled: every gateway keeps the standard 8 channels.
    ga.forced_channel_count = 8;
  }
  if (!config_.strategy7_node_side) {
    ga.frozen_nodes =
        FrozenNodes{snapshot_solution(network, outcome.instance)};
  }

  const MonotonicClock& clock =
      config_.clock != nullptr ? *config_.clock : steady_process_clock();
  const Seconds start = clock.now();
  GaResult result = solve_cp(outcome.instance, ga);
  outcome.solve_seconds = clock.now() - start;
  outcome.eval = result.best_eval;
  outcome.ga_generations = result.generations_run;
  outcome.config =
      to_network_config(outcome.instance, result.best, frequency_offset);

  // Node-side steering disabled: do not touch node settings at all.
  if (!config_.strategy7_node_side) outcome.config.nodes.clear();
  return outcome;
}

LinkEstimates oracle_link_estimates(Deployment& deployment,
                                    const Network& network) {
  LinkEstimates links;
  for (const auto& node : network.nodes()) {
    LinkEstimates::NodeLinks entry;
    entry.observed_tx_power = node.config().tx_power;
    entry.packets = 1;
    for (const auto& gw : network.gateways()) {
      const Db snr = deployment.mean_snr(node, gw);
      // Only links that could ever be heard (SF12 threshold, generous
      // margin) enter the estimate — matching what logs can contain.
      if (snr >= demod_snr_threshold(SpreadingFactor::kSF12) - Db{3.0}) {
        entry.gateway_snr[gw.id()] = snr;
      }
    }
    if (!entry.gateway_snr.empty()) {
      links.nodes.emplace(node.id(), std::move(entry));
    }
  }
  return links;
}

std::map<NodeId, double> uniform_traffic(const Network& network,
                                         double packets_per_window) {
  std::map<NodeId, double> traffic;
  for (const auto& node : network.nodes()) {
    traffic[node.id()] = packets_per_window;
  }
  return traffic;
}

}  // namespace alphawan
