// Figure 16 reproduction: impact of spectrum sharing on packet reception.
// Link 1 (DR4) is swept across SNR; link 2 coexists on a channel with 20%
// overlap under four configurations (4/20 dBm x orthogonal/non-orthogonal
// DR). Paper: reception threshold ~-13 dB alone; orthogonal coexistence
// barely moves it; non-orthogonal raises it by 3.3-3.7 dB.
#include "harness.hpp"

#include "net/sync_word.hpp"
#include "phy/sensitivity.hpp"
#include "radio/gateway_radio.hpp"

using namespace alphawan;
using namespace alphawan::bench;

namespace {

constexpr int kTrials = 120;

double prr(Db link_snr, bool coexist, Db interferer_above_noise,
           bool orthogonal, Rng& rng) {
  const Spectrum spec = spectrum_1m6();
  const Dbm noise = noise_floor_dbm(kLoRaBandwidth125k);
  int ok = 0;
  for (int t = 0; t < kTrials; ++t) {
    GatewayRadio radio(default_profile(), 0, kPublicSyncWord);
    radio.configure_channels({spec.grid_channel(0)});
    Transmission wanted;
    wanted.id = 1;
    wanted.node = 1;
    wanted.channel = spec.grid_channel(0);
    wanted.params.sf = SpreadingFactor::kSF8;  // DR4
    std::vector<RxEvent> events = {
        RxEvent{wanted, noise + link_snr + Db{rng.uniform(-0.3, 0.3)}}};
    if (coexist) {
      Transmission interferer = wanted;
      interferer.id = 2;
      interferer.node = 2;
      interferer.network = 1;
      interferer.sync_word = sync_word_for_network(1);
      interferer.params.sf =
          orthogonal ? SpreadingFactor::kSF11 : SpreadingFactor::kSF8;
      interferer.channel.center += 0.8 * kLoRaBandwidth125k;  // 20% overlap
      events.push_back(
          RxEvent{interferer, noise + interferer_above_noise +
                                  Db{rng.uniform(-0.3, 0.3)}});
    }
    const auto outcomes = radio.process(events);
    if (outcomes[0].disposition == RxDisposition::kDelivered) ++ok;
  }
  return static_cast<double>(ok) / kTrials;
}

Db threshold_of(bool coexist, Db interferer_above_noise, bool orthogonal,
                Rng& rng) {
  // Smallest SNR achieving PRR >= 0.5.
  for (Db snr{-20.0}; snr <= Db{5.0}; snr += Db{0.25}) {
    if (prr(snr, coexist, interferer_above_noise, orthogonal, rng) >= 0.5) {
      return snr;
    }
  }
  return Db{99.0};
}

}  // namespace

int main() {
  Rng rng(16);
  print_header(
      "Fig. 16 — DR4 link PRR vs SNR under 20%-overlap coexistence\n"
      "interferer power chosen so the 20 dBm case sits ~35 dB above the\n"
      "noise floor at the gateway (a near, high-power neighbour)");

  // PRR curves.
  std::printf("  %-9s %-10s %-14s %-14s %-14s %-14s\n", "SNR(dB)", "alone",
              "4dBm/orth", "20dBm/orth", "4dBm/non-o", "20dBm/non-o");
  for (Db snr{-16.0}; snr <= Db{-2.0}; snr += Db{2.0}) {
    std::printf("  %-9.0f %-10.2f %-14.2f %-14.2f %-14.2f %-14.2f\n",
                snr.value(), prr(snr, false, Db{0.0}, true, rng),
                prr(snr, true, Db{19.0}, true, rng),
                prr(snr, true, Db{35.0}, true, rng),
                prr(snr, true, Db{19.0}, false, rng),
                prr(snr, true, Db{35.0}, false, rng));
  }

  // Threshold table.
  const Db alone = threshold_of(false, Db{0.0}, true, rng);
  const Db orth_weak = threshold_of(true, Db{19.0}, true, rng);
  const Db orth_strong = threshold_of(true, Db{35.0}, true, rng);
  const Db non_weak = threshold_of(true, Db{19.0}, false, rng);
  const Db non_strong = threshold_of(true, Db{35.0}, false, rng);
  print_note("");
  print_row("threshold alone (dB)", -13.0, alone.value());
  print_row("shift, orth weak (dB)", 0.3, (orth_weak - alone).value());
  print_row("shift, orth strong (dB)", 0.5, (orth_strong - alone).value());
  print_row("shift, non-orth weak (dB)", 3.3, (non_weak - alone).value());
  print_row("shift, non-orth strong (dB)", 3.7, (non_strong - alone).value());
  return 0;
}
