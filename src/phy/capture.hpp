// Co-channel capture model: when two LoRa transmissions overlap in time on
// the same (or partially overlapping) channel, whether the wanted packet
// survives depends on its signal-to-interference ratio and the SF pair.
//
// Same-SF interference is destructive unless the wanted packet is a few dB
// stronger (capture effect). Different SFs are quasi-orthogonal: the wanted
// packet survives unless the interferer is MUCH stronger (tens of dB). The
// thresholds follow the widely used measurements of Croce et al. (IEEE CL
// 2018) and match the paper's observation that orthogonal DRs coexist
// cleanly on overlapping channels (Fig. 8 / Fig. 16).
#pragma once

#include "phy/lora_params.hpp"

namespace alphawan {

// Minimum SIR (dB) for the wanted packet (row: wanted SF, col: interferer
// SF) to survive a time-overlapping interferer.
[[nodiscard]] Db capture_sir_threshold(SpreadingFactor wanted,
                                       SpreadingFactor interferer);

// True if a wanted packet with signal `wanted_dbm` survives a single
// interferer with in-band power `interferer_dbm`.
[[nodiscard]] bool survives_interference(SpreadingFactor wanted_sf,
                                         Dbm wanted_dbm,
                                         SpreadingFactor interferer_sf,
                                         Dbm interferer_dbm);

// Aggregate interference: combine interferer powers (linear sum, in dBm).
// Commutative, so the (a, b) order genuinely does not matter.
// NOLINTNEXTLINE(bugprone-easily-swappable-parameters)
[[nodiscard]] Dbm combine_powers_dbm(Dbm a, Dbm b);

}  // namespace alphawan
