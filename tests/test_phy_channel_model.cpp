#include "phy/channel_model.hpp"

#include <gtest/gtest.h>

#include "phy/sensitivity.hpp"

namespace alphawan {
namespace {

TEST(ChannelModel, PathLossMonotoneInDistance) {
  ChannelModel model;
  Db prev = model.mean_path_loss(Meters{1.0});
  for (Meters d{10.0}; d < Meters{5000.0}; d *= 2.0) {
    const Db pl = model.mean_path_loss(d);
    EXPECT_GT(pl, prev);
    prev = pl;
  }
}

TEST(ChannelModel, BelowReferenceDistanceClamped) {
  ChannelModel model;
  EXPECT_DOUBLE_EQ(model.mean_path_loss(Meters{0.1}).value(),
                   model.mean_path_loss(Meters{1.0}).value());
}

TEST(ChannelModel, ShadowingFrozenPerLink) {
  ChannelModel model;
  const Db a1 = model.link_path_loss(1, 2, Meters{500.0});
  const Db a2 = model.link_path_loss(1, 2, Meters{500.0});
  EXPECT_DOUBLE_EQ(a1.value(), a2.value());
}

TEST(ChannelModel, ShadowingDiffersAcrossLinks) {
  ChannelModel model;
  const Db a = model.link_path_loss(1, 2, Meters{500.0});
  const Db b = model.link_path_loss(3, 2, Meters{500.0});
  EXPECT_NE(a, b);
}

TEST(ChannelModel, ShadowingKeyDoesNotAliasHighRxIds) {
  // Regression: the old `(tx_id << 20) ^ rx_id` cache key aliased once rx
  // ids carried bits >= 20. The runner keys gateways at 1 << 32 upward, so
  // e.g. (node 4096, gateway key 2^32 + 7) collided with (node 0, rx 7) —
  // two unrelated links sharing one frozen shadowing draw.
  ChannelModel model;
  constexpr std::uint64_t kGatewayKeyBase = 1ULL << 32;
  const Db a = model.link_path_loss(4096, kGatewayKeyBase + 7, Meters{500.0});
  const Db b = model.link_path_loss(0, 7, Meters{500.0});
  EXPECT_NE(a, b);
  // And distinct gateways seen from one node must not share draws either.
  const Db g1 = model.link_path_loss(42, kGatewayKeyBase + 1, Meters{500.0});
  const Db g2 = model.link_path_loss(42, kGatewayKeyBase + 2, Meters{500.0});
  EXPECT_NE(g1, g2);
}

TEST(ChannelModel, ShadowingDeterministicAcrossInstances) {
  ChannelModelConfig cfg;
  cfg.seed = 99;
  ChannelModel m1(cfg), m2(cfg);
  EXPECT_DOUBLE_EQ(m1.link_path_loss(5, 6, Meters{800.0}).value(),
                   m2.link_path_loss(5, 6, Meters{800.0}).value());
}

TEST(ChannelModel, FastFadingVariesPerPacket) {
  ChannelModel model;
  Rng rng(3);
  const Dbm p1 = model.received_power(1, 2, Meters{300.0}, Dbm{14.0}, rng);
  const Dbm p2 = model.received_power(1, 2, Meters{300.0}, Dbm{14.0}, rng);
  EXPECT_NE(p1, p2);
  EXPECT_NEAR(p1.value(), p2.value(), 10.0);  // but they stay close (sigma ~1 dB)
}

TEST(ChannelModel, RangeForSnrInvertsModel) {
  ChannelModel model;
  const Db target_snr{-10.0};
  const Meters range = model.range_for_snr(target_snr, Dbm{14.0});
  const Db snr_at_range =
      (Dbm{14.0} - model.mean_path_loss(range)) -
      noise_floor_dbm(kLoRaBandwidth125k);
  EXPECT_NEAR(snr_at_range.value(), target_snr.value(), 0.2);
}

TEST(ChannelModel, UrbanRangesRealistic) {
  // With defaults + 14 dBm, SF7 should reach hundreds of meters and SF12
  // over a kilometer (the paper's testbed exercises all DRs over
  // 2.1 x 1.6 km).
  ChannelModel model;
  const Meters sf7 = model.range_for_snr(
      demod_snr_threshold(SpreadingFactor::kSF7), Dbm{14.0 + 2.0});
  const Meters sf12 = model.range_for_snr(
      demod_snr_threshold(SpreadingFactor::kSF12), Dbm{14.0 + 2.0});
  EXPECT_GT(sf7, Meters{300.0});
  EXPECT_LT(sf7, Meters{1500.0});
  EXPECT_GT(sf12, Meters{1000.0});
  EXPECT_LT(sf12, Meters{4000.0});
  EXPECT_GT(sf12, sf7);
}

TEST(ChannelModel, MeanSnrDropsWithDistance) {
  ChannelModel model;
  EXPECT_GT(model.mean_link_snr(1, 2, Meters{100.0}, Dbm{14.0}),
            model.mean_link_snr(1, 2, Meters{1000.0}, Dbm{14.0}));
}

TEST(ChannelModel, HigherPowerHigherSnr) {
  ChannelModel model;
  EXPECT_GT(model.mean_link_snr(1, 2, Meters{500.0}, Dbm{20.0}),
            model.mean_link_snr(1, 2, Meters{500.0}, Dbm{8.0}));
}

}  // namespace
}  // namespace alphawan
