#include "net/adr.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

NodeRadioConfig base_config() {
  NodeRadioConfig cfg;
  cfg.channel = Channel{Hz{915e6}, Hz{125e3}};
  cfg.dr = DataRate::kDR0;
  cfg.tx_power = Dbm{14.0};
  return cfg;
}

LinkProfile profile_with_snr(Db snr) {
  LinkProfile p;
  p.uplinks = 5;
  p.gateway_snr[1] = snr;
  return p;
}

TEST(Adr, NoUplinksNoDecision) {
  LinkProfile empty;
  EXPECT_FALSE(standard_adr(base_config(), empty).has_value());
}

TEST(Adr, StrongLinkClimbsToDr5AndCutsPower) {
  // SNR 15 dB vs SF12 threshold -20 and margin 8: huge headroom -> DR5 and
  // reduced power (the Fig. 6d/6e skew).
  const auto next = standard_adr(base_config(), profile_with_snr(Db{15.0}));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->dr, DataRate::kDR5);
  EXPECT_LT(next->tx_power, Dbm{14.0});
}

TEST(Adr, ModerateLinkPartialClimb) {
  // SNR -10: margin over SF12 = -10 -(-20) - 8 = 2 dB -> 0 steps at 3 dB.
  const auto none = standard_adr(base_config(), profile_with_snr(Db{-10.0}));
  ASSERT_TRUE(none.has_value());
  EXPECT_EQ(none->dr, DataRate::kDR0);
  // SNR -3: margin = 9 -> 3 steps -> DR3.
  const auto some = standard_adr(base_config(), profile_with_snr(Db{-3.0}));
  ASSERT_TRUE(some.has_value());
  EXPECT_EQ(some->dr, DataRate::kDR3);
  EXPECT_DOUBLE_EQ(some->tx_power.value(), 14.0);
}

TEST(Adr, PowerFloorRespected) {
  const auto next = standard_adr(base_config(), profile_with_snr(Db{60.0}));
  ASSERT_TRUE(next.has_value());
  EXPECT_GE(next->tx_power, Dbm{2.0});
  EXPECT_EQ(next->dr, DataRate::kDR5);
}

TEST(Adr, NegativeMarginBacksOff) {
  NodeRadioConfig cfg = base_config();
  cfg.dr = DataRate::kDR5;  // SF7 threshold -7.5
  cfg.tx_power = Dbm{8.0};
  // SNR -6: margin = -6 + 7.5 - 8 = -6.5 -> -3 steps: raise power to 14
  // (2 steps), then drop DR by 1.
  const auto next = standard_adr(cfg, profile_with_snr(Db{-6.0}));
  ASSERT_TRUE(next.has_value());
  EXPECT_DOUBLE_EQ(next->tx_power.value(), 14.0);
  EXPECT_EQ(next->dr, DataRate::kDR4);
}

TEST(Adr, KeepsChannel) {
  const auto next = standard_adr(base_config(), profile_with_snr(Db{15.0}));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->channel, base_config().channel);
}

TEST(Adr, UsesBestGatewaySnr) {
  LinkProfile p;
  p.uplinks = 3;
  p.gateway_snr[1] = Db{-15.0};
  p.gateway_snr[2] = Db{10.0};  // the strong one dominates
  const auto next = standard_adr(base_config(), p);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->dr, DataRate::kDR5);
}

TEST(Adr, AllNodesBatch) {
  NetworkServer server(0);
  std::vector<UplinkRecord> records;
  UplinkRecord rec;
  rec.packet = 1;
  rec.node = 10;
  rec.gateway = 1;
  rec.snr = Db{20.0};
  records.push_back(rec);
  server.ingest(records);

  std::map<NodeId, NodeRadioConfig> current;
  current[10] = base_config();
  current[11] = base_config();  // no uplinks: stays put
  const auto next = standard_adr_all(current, server);
  EXPECT_EQ(next.at(10).dr, DataRate::kDR5);
  EXPECT_EQ(next.at(11).dr, DataRate::kDR0);
}

}  // namespace
}  // namespace alphawan
