// alphawan-lint fixture: unit-discipline family, negative cases.
// Linted as-if at src/phy/units_negative.hpp; must stay silent.
#pragma once

#include <cmath>

namespace alphawan {

template <typename Tag>
class Quantity {
 public:
  constexpr explicit Quantity(double v) : value_(v) {}
  [[nodiscard]] constexpr double value() const { return value_; }

 private:
  double value_;
};

struct DbmTag {};
struct DbTag {};
using Dbm = Quantity<DbmTag>;
using Db = Quantity<DbTag>;

// Strong types with unit-suffixed names: exactly the convention.
Dbm combine_power_dbm(Dbm tx_power_dbm, Db antenna_gain_db);

// Distinct adjacent types are not swappable.
Dbm apply_gain(Dbm power, Db gain);

// ALPHAWAN-LINT-ALLOW(units-swappable-pair: interval convention lo then
// hi, asserted at runtime)
double clamp_fraction(double lo, double hi);

// Unwrapping for transcendental math is the sanctioned escape hatch; the
// rewrap wraps a genuinely new value, not the same one.
inline Dbm halve_linear(Dbm power) {
  return Dbm{10.0 * std::log10(std::pow(10.0, power.value() / 10.0) / 2.0)};
}

// A suffix-free raw double is no finding.
double fraction_of_capacity(double used, int total);

}  // namespace alphawan
