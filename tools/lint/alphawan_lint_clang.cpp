// alphawan-lint AST engine: clang libTooling / AST-matcher checker.
//
// Same check catalogue and ALPHAWAN-LINT-ALLOW grammar as the token engine
// (tools/lint/alphawan_lint.py); see docs/static-analysis.md. This binary
// consumes compile_commands.json the standard libTooling way:
//
//   alphawan-lint-ast -p build src/core/intra_planner.cpp ...
//
// It is built only where Clang development packages are installed
// (find_package(Clang) in tools/lint/CMakeLists.txt) — the container/CI
// images that lack them fall back to the token engine, which implements a
// superset of these checks. Where the two engines differ:
//   * the AST engine resolves types exactly (no false positives on
//     shadowed names or on `unordered_map` mentioned in comments);
//   * the token engine additionally covers rng-shared-capture,
//     units-swappable-pair and units-value-roundtrip, whose AST
//     formulations are deferred (noted below).
//
// Output format is identical to the token engine:
//   <path>:<line>: <check-id>: <message>
// and the exit status is 1 iff any unsuppressed finding was emitted.

#include <cstdio>
#include <string>
#include <vector>

#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/FrontendActions.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"

namespace {

using namespace clang;             // NOLINT
using namespace clang::ast_matchers;  // NOLINT
using clang::tooling::CommonOptionsParser;

llvm::cl::OptionCategory gCategory("alphawan-lint-ast options");
llvm::cl::opt<std::string> gRepoRoot(
    "repo-root", llvm::cl::desc("repo root for relative paths and scoping"),
    llvm::cl::init(""), llvm::cl::cat(gCategory));

int gFindings = 0;

std::string relPath(llvm::StringRef file) {
  std::string f = file.str();
  if (!gRepoRoot.empty() && f.rfind(gRepoRoot, 0) == 0) {
    f = f.substr(gRepoRoot.size());
    while (!f.empty() && (f.front() == '/' || f.front() == '\\')) {
      f = f.substr(1);
    }
  }
  return f;
}

bool startsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool inSrc(const std::string& p) { return startsWith(p, "src/"); }

bool inDigestDirs(const std::string& p) {
  return startsWith(p, "src/sim/") || startsWith(p, "src/phy/") ||
         startsWith(p, "src/radio/") || startsWith(p, "src/check/");
}

bool rngSeedScope(const std::string& p) {
  return startsWith(p, "src/") || startsWith(p, "examples/");
}

// ALPHAWAN-LINT-ALLOW(<check>: <reason>) on the finding's line or on the
// run of comment-only lines directly above it.
bool isAllowed(const SourceManager& sm, SourceLocation loc,
               llvm::StringRef check) {
  const FileID fid = sm.getFileID(loc);
  bool invalid = false;
  const llvm::StringRef buffer = sm.getBufferData(fid, &invalid);
  if (invalid) return false;
  unsigned line = sm.getSpellingLineNumber(loc);
  llvm::SmallVector<llvm::StringRef, 64> lines;
  buffer.split(lines, '\n');
  const std::string needle =
      ("ALPHAWAN-LINT-ALLOW(" + check + ":").str();
  for (unsigned probe = line; probe >= 1; --probe) {
    const llvm::StringRef text = lines[probe - 1];
    if (text.contains(needle)) return true;
    if (probe == line) continue;
    // Keep walking only through comment-only lines.
    const llvm::StringRef trimmed = text.ltrim();
    if (!trimmed.startswith("//") && !trimmed.empty()) return false;
    if (probe == 1) break;
  }
  return false;
}

void report(const SourceManager& sm, SourceLocation loc,
            llvm::StringRef check, llvm::StringRef message) {
  if (loc.isInvalid() || !sm.isInFileID(loc, sm.getMainFileID())) {
    // Only report in the main file: headers are linted as their own
    // inputs, which keeps findings deduplicated across TUs.
    return;
  }
  if (isAllowed(sm, loc, check)) return;
  const std::string path = relPath(sm.getFilename(loc));
  std::printf("%s:%u: %s: %s\n", path.c_str(),
              sm.getSpellingLineNumber(loc), check.str().c_str(),
              message.str().c_str());
  ++gFindings;
}

class Reporter : public MatchFinder::MatchCallback {
 public:
  void run(const MatchFinder::MatchResult& result) override {
    const SourceManager& sm = *result.SourceManager;
    const std::string main =
        relPath(sm.getFileEntryForID(sm.getMainFileID())->getName());

    if (const auto* d =
            result.Nodes.getNodeAs<DeclRefExpr>("wallclock-fn")) {
      if (inSrc(main)) {
        report(sm, d->getBeginLoc(), "determinism-wallclock",
               "rand()/srand() bypass the seeded Rng substreams");
      }
    }
    if (const auto* d =
            result.Nodes.getNodeAs<VarDecl>("random-device")) {
      if (inSrc(main)) {
        report(sm, d->getBeginLoc(), "determinism-wallclock",
               "std::random_device is non-deterministic; draw from a "
               "seeded Rng");
      }
    }
    if (const auto* c = result.Nodes.getNodeAs<CallExpr>("clock-now")) {
      if (inSrc(main)) {
        report(sm, c->getBeginLoc(), "determinism-wallclock",
               "wall/monotonic clock read in src/ must be annotated or "
               "routed through MonotonicClock (src/common/clock.hpp)");
      }
    }
    if (const auto* f =
            result.Nodes.getNodeAs<CXXForRangeStmt>("unordered-iter")) {
      if (inDigestDirs(main)) {
        report(sm, f->getBeginLoc(), "determinism-unordered-iter",
               "iteration over a std::unordered container in a "
               "digest-affecting subsystem breaks bit-identical replay");
      }
    }
    if (const auto* d =
            result.Nodes.getNodeAs<DeclaratorDecl>("unordered-member")) {
      if (inDigestDirs(main)) {
        report(sm, d->getBeginLoc(), "determinism-unordered-member",
               "std::unordered container declared in a digest-affecting "
               "subsystem; annotate the no-iteration contract or use a "
               "sorted container");
      }
    }
    if (const auto* c =
            result.Nodes.getNodeAs<CXXConstructExpr>("rng-literal")) {
      if (rngSeedScope(main)) {
        report(sm, c->getBeginLoc(), "rng-literal-seed",
               "Rng seeded from a literal outside tests//bench/; seeds "
               "must flow in from configuration");
      }
    }
    if (const auto* p =
            result.Nodes.getNodeAs<ParmVarDecl>("raw-unit-param")) {
      if (inSrc(main)) {
        report(sm, p->getBeginLoc(), "units-raw-double",
               "parameter carries a unit suffix but is raw double/float; "
               "use the Quantity<Tag> strong type");
      }
    }
    if (const auto* f =
            result.Nodes.getNodeAs<FunctionDecl>("raw-unit-return")) {
      if (inSrc(main)) {
        report(sm, f->getBeginLoc(), "units-raw-double",
               "function named with a unit suffix returns raw "
               "double/float; return the Quantity<Tag> strong type");
      }
    }
    if (const auto* d =
            result.Nodes.getNodeAs<DeclaratorDecl>("pointer-key")) {
      if (inSrc(main)) {
        report(sm, d->getBeginLoc(), "ordering-pointer-key",
               "std::map/std::set keyed on a raw pointer iterates in "
               "allocation order; key on a stable id or annotate the "
               "lookup-only contract");
      }
    }
  }
};

}  // namespace

int main(int argc, const char** argv) {
  auto expectedParser = CommonOptionsParser::create(argc, argv, gCategory);
  if (!expectedParser) {
    llvm::errs() << llvm::toString(expectedParser.takeError()) << "\n";
    return 2;
  }
  CommonOptionsParser& options = *expectedParser;
  clang::tooling::ClangTool tool(options.getCompilations(),
                                 options.getSourcePathList());

  Reporter reporter;
  MatchFinder finder;

  const auto unorderedType = qualType(hasUnqualifiedDesugaredType(
      recordType(hasDeclaration(namedDecl(hasAnyName(
          "::std::unordered_map", "::std::unordered_set"))))));

  finder.addMatcher(
      declRefExpr(to(functionDecl(hasAnyName("::rand", "::srand"))))
          .bind("wallclock-fn"),
      &reporter);
  finder.addMatcher(
      varDecl(hasType(namedDecl(hasName("::std::random_device"))))
          .bind("random-device"),
      &reporter);
  finder.addMatcher(
      callExpr(callee(cxxMethodDecl(
                   hasName("now"),
                   ofClass(hasAnyName("::std::chrono::system_clock",
                                      "::std::chrono::steady_clock")))))
          .bind("clock-now"),
      &reporter);
  finder.addMatcher(
      cxxForRangeStmt(hasRangeInit(expr(hasType(unorderedType))))
          .bind("unordered-iter"),
      &reporter);
  finder.addMatcher(fieldDecl(hasType(unorderedType)).bind("unordered-member"),
                    &reporter);
  finder.addMatcher(
      varDecl(hasType(unorderedType), unless(parmVarDecl()))
          .bind("unordered-member"),
      &reporter);
  finder.addMatcher(
      cxxConstructExpr(hasDeclaration(cxxConstructorDecl(
                           ofClass(hasName("::alphawan::Rng")))),
                       hasArgument(0, ignoringParenImpCasts(integerLiteral())))
          .bind("rng-literal"),
      &reporter);
  finder.addMatcher(
      parmVarDecl(hasType(realFloatingPointType()),
                  matchesName(".*_(dbm|db|hz|seconds|m)$"))
          .bind("raw-unit-param"),
      &reporter);
  finder.addMatcher(
      functionDecl(returns(realFloatingPointType()),
                   matchesName(".*_(dbm|db|hz|seconds|m)$"))
          .bind("raw-unit-return"),
      &reporter);

  const auto pointerKeyedType = qualType(hasUnqualifiedDesugaredType(
      recordType(hasDeclaration(classTemplateSpecializationDecl(
          hasAnyName("::std::map", "::std::set"),
          hasTemplateArgument(0, refersToType(pointerType())))))));
  finder.addMatcher(fieldDecl(hasType(pointerKeyedType)).bind("pointer-key"),
                    &reporter);
  finder.addMatcher(
      varDecl(hasType(pointerKeyedType), unless(parmVarDecl()))
          .bind("pointer-key"),
      &reporter);

  // Deferred to the token engine for now: rng-shared-capture (lambda
  // capture analysis across parallel_for), units-swappable-pair and
  // units-value-roundtrip. docs/static-analysis.md tracks engine parity.

  const int toolStatus =
      tool.run(clang::tooling::newFrontendActionFactory(&finder).get());
  if (toolStatus != 0) return 2;
  return gFindings > 0 ? 1 : 0;
}
