// Receiver sensitivity / demodulation thresholds and the DR <-> range
// mapping used by the CP problem's discrete transmission-distance set.
#pragma once

#include <array>
#include <optional>

#include "phy/lora_params.hpp"

namespace alphawan {

// Minimum SNR (dB) required to demodulate each spreading factor at 125 kHz
// (Semtech SX1276/SX1302 datasheet values). SF12 decodes ~20 dB below the
// noise floor — this is why directional antennas fail to isolate users
// (paper Fig. 7): even signals attenuated 40 dB can remain decodable.
[[nodiscard]] constexpr Db demod_snr_threshold(SpreadingFactor sf) {
  switch (sf) {
    case SpreadingFactor::kSF7: return Db{-7.5};
    case SpreadingFactor::kSF8: return Db{-10.0};
    case SpreadingFactor::kSF9: return Db{-12.5};
    case SpreadingFactor::kSF10: return Db{-15.0};
    case SpreadingFactor::kSF11: return Db{-17.5};
    case SpreadingFactor::kSF12: return Db{-20.0};
  }
  return Db{0.0};
}

// Receiver sensitivity in dBm = noise floor + demod threshold.
[[nodiscard]] constexpr Dbm sensitivity_dbm(SpreadingFactor sf, Hz bandwidth) {
  return noise_floor_dbm(bandwidth) + demod_snr_threshold(sf);
}

// Extra SNR (dB) above the bare demodulation limit that the packet
// detector needs to lock onto a preamble reliably.
inline constexpr Db kDetectionMargin{0.0};

// Best (fastest) data rate whose threshold the given SNR satisfies with
// `margin` dB to spare; nullopt if even SF12 cannot be demodulated.
// ALPHAWAN-LINT-ALLOW(units-swappable-pair: margin is defaulted and only
// ever passed by name at the two call sites)
[[nodiscard]] std::optional<DataRate> best_data_rate_for_snr(
    Db snr, Db margin = Db{0.0});

// The CP formulation discretizes node communication ranges into |DR|
// levels: level l corresponds to using DataRate l at some transmit power.
// This table maps a discrete level to the approximate reliable range in a
// typical urban channel (used by planners; the simulator itself always
// works from actual path loss).
struct RangeLevel {
  DataRate dr;
  Meters typical_range;
  Dbm tx_power;
};

[[nodiscard]] const std::array<RangeLevel, kNumDataRates>& range_levels();

// Transmit power ladder available to end nodes (LoRaWAN TXPower steps).
inline constexpr std::array<Dbm, 6> kTxPowerLadder = {
    Dbm{2.0}, Dbm{5.0}, Dbm{8.0}, Dbm{11.0}, Dbm{14.0}, Dbm{20.0}};
inline constexpr Dbm kDefaultTxPower{14.0};
inline constexpr Dbm kMaxTxPower{20.0};

}  // namespace alphawan
