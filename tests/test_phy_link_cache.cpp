#include "phy/link_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace alphawan {
namespace {

constexpr std::uint64_t kRxKeyBase = 1ULL << 32;

// A deterministic, position-dependent stand-in for a gateway antenna.
Db toy_antenna_gain(const Point& origin) {
  return Db{-(origin.x.value() + origin.y.value()) / 1000.0};
}

struct Site {
  GatewayId id;
  Point position;
};

struct Tx {
  NodeId node;
  Point origin;
};

std::vector<Site> test_sites() {
  return {{1, Point{Meters{0.0}, Meters{0.0}}},
          {2, Point{Meters{1200.0}, Meters{300.0}}},
          {7, Point{Meters{-400.0}, Meters{900.0}}}};
}

std::vector<Tx> test_nodes() {
  return {{0, Point{Meters{50.0}, Meters{80.0}}},
          {3, Point{Meters{700.0}, Meters{-200.0}}},
          {11, Point{Meters{1500.0}, Meters{1500.0}}},
          {42, Point{Meters{-900.0}, Meters{400.0}}}};
}

void upsert(LinkCache& cache, const Site& site, std::uint64_t epoch = 0) {
  cache.upsert_gateway(site.id, kRxKeyBase + site.id, site.position, epoch,
                       toy_antenna_gain);
}

// Two caches over identically configured models (frozen shadowing draws are
// keyed by (node, rx_key) and the config seed, so both see the same links)
// must agree gain for gain no matter the registration order.
TEST(LinkCache, IncrementalAddMatchesFromScratchRebuild) {
  ChannelModelConfig cfg;
  cfg.seed = 7;
  ChannelModel model_a(cfg), model_b(cfg);
  LinkCache incremental(model_a);
  LinkCache rebuilt(model_b);

  const auto sites = test_sites();
  const auto nodes = test_nodes();

  // Interleave: one gateway, two rows, the remaining gateways (which must
  // backfill existing rows), then the remaining rows.
  upsert(incremental, sites[0]);
  incremental.ensure_row(nodes[0].node, nodes[0].origin);
  incremental.ensure_row(nodes[1].node, nodes[1].origin);
  upsert(incremental, sites[1]);
  upsert(incremental, sites[2]);
  incremental.ensure_row(nodes[2].node, nodes[2].origin);
  incremental.ensure_row(nodes[3].node, nodes[3].origin);

  // From scratch: all gateways first, then all rows.
  for (const auto& site : sites) upsert(rebuilt, site);
  for (const auto& tx : nodes) rebuilt.ensure_row(tx.node, tx.origin);

  ASSERT_EQ(incremental.column_count(), rebuilt.column_count());
  ASSERT_EQ(incremental.row_count(), rebuilt.row_count());
  for (const auto& site : sites) {
    const auto col_a = incremental.column_of(site.id);
    const auto col_b = rebuilt.column_of(site.id);
    ASSERT_NE(col_a, LinkCache::kInvalidColumn);
    ASSERT_NE(col_b, LinkCache::kInvalidColumn);
    const auto gains_a = incremental.gains(col_a);
    const auto gains_b = rebuilt.gains(col_b);
    ASSERT_EQ(gains_a.size(), gains_b.size());
    for (std::size_t row = 0; row < gains_a.size(); ++row) {
      EXPECT_DOUBLE_EQ(gains_a[row].path_loss.value(),
                       gains_b[row].path_loss.value());
      EXPECT_DOUBLE_EQ(gains_a[row].antenna_gain.value(),
                       gains_b[row].antenna_gain.value());
    }
  }
}

TEST(LinkCache, EnsureRowIsIdempotent) {
  ChannelModel model;
  LinkCache cache(model);
  upsert(cache, test_sites()[0]);
  const auto tx = test_nodes()[0];
  const auto row = cache.ensure_row(tx.node, tx.origin);
  EXPECT_EQ(cache.ensure_row(tx.node, tx.origin), row);
  EXPECT_EQ(cache.row_count(), 1u);
}

TEST(LinkCache, ReusedNodeIdWithNewOriginIsRecomputedInPlace) {
  ChannelModelConfig cfg;
  cfg.seed = 3;
  ChannelModel model(cfg), fresh_model(cfg);
  LinkCache cache(model);
  const auto site = test_sites()[0];
  upsert(cache, site);

  const NodeId node = 1'000'123;  // virtual id, reused across positions
  const Point p1{Meters{100.0}, Meters{100.0}};
  const Point p2{Meters{2000.0}, Meters{-500.0}};
  const auto row = cache.ensure_row(node, p1);
  ASSERT_EQ(cache.ensure_row(node, p2), row);

  // The recomputed row must equal a cache that only ever saw p2.
  LinkCache fresh(fresh_model);
  upsert(fresh, site);
  fresh.ensure_row(node, p2);
  const auto got = cache.gains(cache.column_of(site.id))[row];
  const auto want = fresh.gains(fresh.column_of(site.id))[0];
  EXPECT_DOUBLE_EQ(got.path_loss.value(), want.path_loss.value());
  EXPECT_DOUBLE_EQ(got.antenna_gain.value(), want.antenna_gain.value());
}

TEST(LinkCache, AntennaEpochRefreshesGainsButNotPathLoss) {
  ChannelModel model;
  LinkCache cache(model);
  const auto site = test_sites()[0];
  upsert(cache, site, 0);
  const auto tx = test_nodes()[0];
  const auto row = cache.ensure_row(tx.node, tx.origin);
  const auto col = cache.column_of(site.id);
  const LinkGain before = cache.gains(col)[row];

  // Same epoch: the new gain function must be ignored.
  cache.upsert_gateway(site.id, kRxKeyBase + site.id, site.position, 0,
                       [](const Point&) { return Db{9.0}; });
  EXPECT_DOUBLE_EQ(cache.gains(col)[row].antenna_gain.value(),
                   before.antenna_gain.value());

  // Advanced epoch: antenna gain refreshes, path loss stays frozen.
  cache.upsert_gateway(site.id, kRxKeyBase + site.id, site.position, 1,
                       [](const Point&) { return Db{9.0}; });
  const LinkGain after = cache.gains(col)[row];
  EXPECT_DOUBLE_EQ(after.antenna_gain.value(), 9.0);
  EXPECT_DOUBLE_EQ(after.path_loss.value(), before.path_loss.value());
}

TEST(LinkCache, ColumnOfUnknownGatewayIsInvalid) {
  ChannelModel model;
  LinkCache cache(model);
  EXPECT_EQ(cache.column_of(99), LinkCache::kInvalidColumn);
}

// The candidate lists are a conservative superset: a pruned (row, column)
// pair must be undeliverable for EVERY fading draw the Rng can produce.
// kNormalTailSigmas bounds |normal()|, so the worst case is tx at the power
// bound plus that many sigmas of constructive fading.
TEST(LinkCache, CandidateListsAreConservativeSuperset) {
  ChannelModelConfig cfg;
  cfg.seed = 11;
  ChannelModel model(cfg);
  LinkCache cache(model);
  for (const auto& site : test_sites()) upsert(cache, site);
  // Spread rows from close-in to far beyond plausible reach so both
  // candidate and pruned pairs exist.
  std::vector<std::uint32_t> rows;
  for (int k = 0; k < 8; ++k) {
    const double d = 100.0 * std::pow(4.0, k);  // 100 m .. ~1638 km
    rows.push_back(
        cache.ensure_row(100 + k, Point{Meters{d}, Meters{0.0}}));
  }

  const Dbm floor = noise_floor_dbm(kLoRaBandwidth125k) - Db{10.0};
  const Dbm power_bound{20.0};
  const double sigma = model.config().fast_fading_sigma_db.value();

  bool saw_pruned = false;
  for (const auto row : rows) {
    const auto candidates = cache.candidate_columns(row, floor, power_bound);
    for (std::uint32_t col = 0; col < cache.column_count(); ++col) {
      const bool is_candidate =
          std::find(candidates.begin(), candidates.end(), col) !=
          candidates.end();
      if (is_candidate) continue;
      saw_pruned = true;
      // Best case a pruned pair could ever realize must stay below floor.
      const LinkGain g = cache.gains(col)[row];
      const Db max_fading{kNormalTailSigmas * sigma};
      const Dbm best =
          power_bound - g.path_loss + max_fading + g.antenna_gain;
      EXPECT_LT(best.value(), floor.value())
          << "pruned pair (row " << row << ", col " << col
          << ") could have cleared the floor";
    }
  }
  EXPECT_TRUE(saw_pruned) << "test topology produced no pruned pairs";
}

// Rows added after the candidate layout is built extend it incrementally;
// the result must match a cold rebuild over the same rows.
TEST(LinkCache, IncrementalCandidatesMatchRebuild) {
  ChannelModelConfig cfg;
  cfg.seed = 13;
  ChannelModel model_a(cfg), model_b(cfg);
  LinkCache warm(model_a);
  LinkCache cold(model_b);
  for (const auto& site : test_sites()) {
    upsert(warm, site);
    upsert(cold, site);
  }

  const Dbm floor = noise_floor_dbm(kLoRaBandwidth125k) - Db{10.0};
  const Dbm power_bound{20.0};

  const Point near{Meters{200.0}, Meters{0.0}};
  const Point far{Meters{3.0e6}, Meters{0.0}};
  warm.ensure_row(1, near);
  (void)warm.candidate_columns(0, floor, power_bound);  // build layout
  warm.ensure_row(2, far);                              // incremental append
  warm.ensure_row(3, near);

  cold.ensure_row(1, near);
  cold.ensure_row(2, far);
  cold.ensure_row(3, near);

  for (std::uint32_t row = 0; row < 3; ++row) {
    const auto a = warm.candidate_columns(row, floor, power_bound);
    const auto b = cold.candidate_columns(row, floor, power_bound);
    ASSERT_EQ(a.size(), b.size()) << "row " << row;
    for (std::size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
}

}  // namespace
}  // namespace alphawan
