#include "sim/scenario.hpp"

#include <algorithm>

#include "check/invariants.hpp"
#include "common/parallel.hpp"
#include "radio/detector.hpp"

namespace alphawan {
namespace {
constexpr std::uint64_t kGatewayKeyBase = 1ULL << 32;
// Substream domain tag separating fading draws from any future named
// substreams derived from the same runner seed.
constexpr std::uint64_t kFadingDomain = 0xFAD1'F0E5'7A7EULL;

// Everything one gateway produces from a window, computed independently of
// every other gateway and merged in deployment order afterwards.
struct GatewayYield {
  std::vector<RxOutcome> outcomes;
  std::vector<std::size_t> event_tx_index;
  std::vector<UplinkRecord> uplinks;
};
}  // namespace

Rng packet_link_rng(const Rng& root, GatewayId gateway, PacketId packet) {
  return root.substream(kFadingDomain ^ (static_cast<std::uint64_t>(gateway) << 40),
                        packet);
}

std::size_t WindowResult::total_delivered() const {
  std::size_t total = 0;
  for (const auto& [net, n] : delivered) total += n;
  return total;
}

std::size_t WindowResult::total_offered() const {
  std::size_t total = 0;
  for (const auto& [net, n] : offered) total += n;
  return total;
}

ScenarioRunner::ScenarioRunner(Deployment& deployment, std::uint64_t seed,
                               RunOptions options)
    : deployment_(deployment),
      rng_(seed),
      options_(std::move(options)),
      invariants_(invariants_from_env()) {}

WindowResult ScenarioRunner::run_window(const std::vector<Transmission>& txs) {
  WindowResult result;
  auto& channel = deployment_.channel_model();
  // Flatten (network, gateway) pairs in deployment order: the parallel
  // fan-out runs them in any order, the merge below walks them in this one.
  std::vector<std::pair<Network*, Gateway*>> tasks;
  for (auto& network : deployment_.networks()) {
    result.offered[network.id()] = 0;
    result.delivered[network.id()] = 0;
    result.served_nodes[network.id()] = 0;
    // (Re)attach the checker every window: gateways may have been added
    // since the last one, and a null attach detaches a stale checker.
    for (auto& gw : network.gateways()) {
      gw.set_observer(invariants_);
      tasks.emplace_back(&network, &gw);
    }
  }

  // Per-gateway pipelines are independent: each consumes the shared
  // transmission list and touches only its own gateway (plus the internally
  // synchronized shadowing cache). The invariant checker's observer
  // protocol is sequential, so an attached checker forces serial execution.
  std::vector<GatewayYield> yields(tasks.size());
  const int threads = invariants_ != nullptr ? 1 : options_.threads;
  parallel_for(
      tasks.size(),
      [&](std::size_t t) {
        auto& [network, gw] = tasks[t];
        auto& yield = yields[t];
        // Build this gateway's view of the air.
        std::vector<RxEvent> events;
        events.reserve(txs.size());
        yield.event_tx_index.reserve(txs.size());
        const Dbm floor =
            noise_floor_dbm(kLoRaBandwidth125k) - options_.prune_margin;
        for (std::size_t i = 0; i < txs.size(); ++i) {
          const auto& tx = txs[i];
          const Meters dist = distance(tx.origin, gw->position());
          Rng link_rng = packet_link_rng(rng_, gw->id(), tx.id);
          const Dbm rx_power =
              channel.received_power(tx.node, kGatewayKeyBase + gw->id(), dist,
                                     tx.tx_power, link_rng) +
              gw->antenna_gain_towards(tx.origin);
          if (rx_power < floor) continue;
          events.push_back(RxEvent{tx, rx_power});
          yield.event_tx_index.push_back(i);
        }

        yield.outcomes = gw->receive_window(events, yield.uplinks);
        if (options_.post_processor) {
          options_.post_processor(*gw, events, yield.outcomes);
          // Post-processors may promote outcomes to kDelivered; forward
          // newly delivered packets to the server like the radio would.
          for (std::size_t e = 0; e < yield.outcomes.size(); ++e) {
            const auto& out = yield.outcomes[e];
            if (out.disposition != RxDisposition::kDelivered) continue;
            const bool already = std::any_of(
                yield.uplinks.begin(), yield.uplinks.end(),
                [&](const UplinkRecord& r) {
                  return r.packet == out.packet && r.gateway == gw->id();
                });
            if (already) continue;
            UplinkRecord rec;
            rec.packet = out.packet;
            rec.node = out.node;
            rec.gateway = gw->id();
            rec.network = network->id();
            rec.timestamp = events[e].tx.end();
            rec.channel = events[e].tx.channel;
            rec.dr = sf_to_dr(events[e].tx.params.sf);
            rec.snr = out.snr;
            yield.uplinks.push_back(rec);
          }
        }
      },
      threads);

  // Merge in deployment order: per own-network outcomes of each packet
  // (keyed by its index in txs) gather in gateway-ID order within the
  // packet's network, and each server ingests its gateways' uplinks in that
  // same order — exactly the serial sequence.
  std::vector<std::vector<RxOutcome>> own_outcomes(txs.size());
  std::size_t t = 0;
  for (auto& network : deployment_.networks()) {
    std::vector<UplinkRecord> uplinks;
    for ([[maybe_unused]] auto& gw : network.gateways()) {
      auto& yield = yields[t++];
      for (std::size_t e = 0; e < yield.outcomes.size(); ++e) {
        const auto& tx_ref = txs[yield.event_tx_index[e]];
        if (tx_ref.network != network.id()) continue;  // foreign at this GW
        own_outcomes[yield.event_tx_index[e]].push_back(yield.outcomes[e]);
      }
      uplinks.insert(uplinks.end(), yield.uplinks.begin(), yield.uplinks.end());
    }
    network.server().ingest(uplinks);
  }

  // Classify every offered packet against its own network's gateways.
  std::map<NetworkId, std::set<NodeId>> served;
  result.fates.reserve(txs.size());
  for (std::size_t i = 0; i < txs.size(); ++i) {
    PacketFate fate = classify_packet(txs[i], own_outcomes[i]);
    ++result.offered[fate.network];
    if (fate.delivered) {
      ++result.delivered[fate.network];
      served[fate.network].insert(fate.node);
    }
    result.fates.push_back(std::move(fate));
  }
  for (const auto& [net, nodes] : served) {
    result.served_nodes[net] = nodes.size();
  }
  if (invariants_ != nullptr) invariants_->check_window(result);
  return result;
}

WindowResult ScenarioRunner::run_window(const std::vector<Transmission>& txs,
                                        MetricsCollector& metrics) {
  WindowResult result = run_window(txs);
  for (const auto& fate : result.fates) metrics.record(fate);
  return result;
}

}  // namespace alphawan
