#include "phy/link_cache.hpp"

#include "common/rng.hpp"

namespace alphawan {
namespace {
// Absorbs any floating-point reassociation between the pruning inequality
// (one subtraction) and the full received-power expression it stands in
// for; dwarfs the few-ulp error either side can accumulate.
constexpr double kPruneSlackDb = 1.0;
}  // namespace

std::uint32_t LinkCache::column_of(GatewayId id) const {
  const auto it = column_of_.find(id);
  return it == column_of_.end() ? kInvalidColumn : it->second;
}

std::uint32_t LinkCache::row_of(NodeId node) const {
  const auto it = row_of_.find(node);
  return it == row_of_.end() ? kInvalidRow : it->second;
}

LinkGain LinkCache::compute_gain(const Column& column, NodeId node,
                                 const Point& origin) {
  // Argument order matches the uncached runner path exactly:
  // distance(tx.origin, gw.position()) feeding link_path_loss.
  const Meters dist = distance(origin, column.position);
  return LinkGain{model_->link_path_loss(node, column.rx_key, dist),
                  column.antenna_gain(origin)};
}

std::size_t LinkCache::upsert_gateway(GatewayId id, std::uint64_t rx_key,
                                      const Point& position,
                                      std::uint64_t antenna_epoch,
                                      AntennaGainFn antenna_gain) {
  const auto it = column_of_.find(id);
  if (it != column_of_.end()) {
    Column& column = columns_[it->second];
    if (column.antenna_epoch != antenna_epoch) {
      // Path loss is position-bound and positions are immutable; only the
      // antenna term needs recomputing.
      column.antenna_epoch = antenna_epoch;
      column.antenna_gain = std::move(antenna_gain);
      for (std::uint32_t row = 0; row < row_origin_.size(); ++row) {
        column.gains[row].antenna_gain = column.antenna_gain(row_origin_[row]);
      }
      candidates_valid_ = false;
      ++structure_epoch_;  // a new antenna can make rejected nodes audible
    }
    return it->second;
  }

  Column column;
  column.id = id;
  column.rx_key = rx_key;
  column.position = position;
  column.antenna_epoch = antenna_epoch;
  column.antenna_gain = std::move(antenna_gain);
  column.gains.reserve(row_origin_.size());
  for (std::uint32_t row = 0; row < row_origin_.size(); ++row) {
    column.gains.push_back(
        compute_gain(column, row_node_[row], row_origin_[row]));
  }
  const auto index = columns_.size();
  columns_.push_back(std::move(column));
  column_of_.emplace(id, static_cast<std::uint32_t>(index));
  candidates_valid_ = false;
  ++structure_epoch_;  // a new column can make rejected nodes audible
  return index;
}

std::uint32_t LinkCache::ensure_row(NodeId node, const Point& origin) {
  const auto it = row_of_.find(node);
  if (it != row_of_.end()) {
    const std::uint32_t row = it->second;
    if (row_origin_[row] == origin) return row;
    // Same id, new position: recompute the row in place. Candidate ranges
    // may shrink or grow, so the flat layout is rebuilt lazily.
    row_origin_[row] = origin;
    for (auto& column : columns_) {
      column.gains[row] = compute_gain(column, node, origin);
    }
    candidates_valid_ = false;
    return row;
  }

  const auto row = static_cast<std::uint32_t>(row_origin_.size());
  row_node_.push_back(node);
  row_origin_.push_back(origin);
  row_of_.emplace(node, row);
  rejected_.erase(node);
  for (auto& column : columns_) {
    column.gains.push_back(compute_gain(column, node, origin));
  }
  if (candidates_valid_) append_candidates_for_row(row);
  return row;
}

std::uint32_t LinkCache::ensure_row_if_audible(NodeId node, const Point& origin,
                                               Dbm floor, Dbm power_bound) {
  if (row_of_.contains(node)) {
    // Already materialized: take the ensure_row refresh path. The row stays
    // resident even if it has drifted inaudible — its candidate list just
    // goes empty, which is equally cheap in the fan-out.
    return ensure_row(node, origin);
  }
  const auto memo = rejected_.find(node);
  if (memo != rejected_.end()) {
    const Rejection& r = memo->second;
    if (r.origin == origin && r.epoch == structure_epoch_ &&
        r.floor == floor && r.power_bound == power_bound) {
      return kInvalidRow;
    }
  }
  // Probe every column into scratch, materializing only on an audible hit
  // (so the probe's work is not thrown away when the node joins).
  const double threshold = audible_threshold(floor, power_bound);
  probe_gains_.clear();
  probe_gains_.reserve(columns_.size());
  bool audible = false;
  for (auto& column : columns_) {
    const LinkGain g = compute_gain(column, node, origin);
    audible = audible ||
              g.antenna_gain.value() - g.path_loss.value() >= threshold;
    probe_gains_.push_back(g);
  }
  if (!audible) {
    rejected_[node] = Rejection{origin, structure_epoch_, floor, power_bound};
    return kInvalidRow;
  }
  const auto row = static_cast<std::uint32_t>(row_origin_.size());
  row_node_.push_back(node);
  row_origin_.push_back(origin);
  row_of_.emplace(node, row);
  for (std::size_t col = 0; col < columns_.size(); ++col) {
    columns_[col].gains.push_back(probe_gains_[col]);
  }
  if (candidates_valid_) append_candidates_for_row(row);
  return row;
}

double LinkCache::audible_threshold(Dbm floor, Dbm power_bound) const {
  const double fade_bound =
      kNormalTailSigmas * model_->config().fast_fading_sigma_db.value();
  return floor.value() - power_bound.value() - fade_bound - kPruneSlackDb;
}

double LinkCache::candidate_threshold() const {
  return audible_threshold(candidate_floor_, candidate_power_bound_);
}

void LinkCache::append_candidates_for_row(std::uint32_t row) {
  const double threshold = candidate_threshold();
  const auto begin = static_cast<std::uint32_t>(candidate_flat_.size());
  for (std::uint32_t col = 0; col < columns_.size(); ++col) {
    const LinkGain& g = columns_[col].gains[row];
    if (g.antenna_gain.value() - g.path_loss.value() >= threshold) {
      candidate_flat_.push_back(col);
    }
  }
  candidate_range_.emplace_back(
      begin, static_cast<std::uint32_t>(candidate_flat_.size()));
}

void LinkCache::rebuild_candidates(Dbm floor, Dbm power_bound) {
  candidate_floor_ = floor;
  candidate_power_bound_ = power_bound;
  candidate_flat_.clear();
  candidate_range_.clear();
  candidate_range_.reserve(row_origin_.size());
  candidates_valid_ = true;
  for (std::uint32_t row = 0; row < row_origin_.size(); ++row) {
    append_candidates_for_row(row);
  }
}

std::span<const std::uint32_t> LinkCache::candidate_columns(std::uint32_t row,
                                                            Dbm floor,
                                                            Dbm power_bound) {
  if (!candidates_valid_ || floor != candidate_floor_ ||
      power_bound != candidate_power_bound_) {
    rebuild_candidates(floor, power_bound);
  }
  const auto [begin, end] = candidate_range_[row];
  return {candidate_flat_.data() + begin, end - begin};
}

std::uint64_t LinkCache::candidate_mask(std::uint32_t row, Dbm floor,
                                        Dbm power_bound) {
  std::uint64_t mask = 0;
  for (const std::uint32_t col : candidate_columns(row, floor, power_bound)) {
    mask |= std::uint64_t{1} << col;
  }
  return mask;
}

}  // namespace alphawan
