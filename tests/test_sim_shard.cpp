#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include "check/digest.hpp"
#include "phy/sensitivity.hpp"
#include "sim/scenario.hpp"
#include "sim/traffic.hpp"

namespace alphawan {
namespace {

TEST(ShardLayout, StripesPartitionTheRegion) {
  const Region region{Meters{1000.0}, Meters{500.0}};
  const ShardLayout layout(region, 4);
  EXPECT_EQ(layout.shards(), 4);
  EXPECT_EQ(layout.shard_of(Point{Meters{0.0}, Meters{10.0}}), 0);
  EXPECT_EQ(layout.shard_of(Point{Meters{249.0}, Meters{10.0}}), 0);
  EXPECT_EQ(layout.shard_of(Point{Meters{250.0}, Meters{10.0}}), 1);
  EXPECT_EQ(layout.shard_of(Point{Meters{999.0}, Meters{10.0}}), 3);
}

TEST(ShardLayout, OutOfRegionPointsClampToNearestStripe) {
  const ShardLayout layout(Region{Meters{1000.0}, Meters{500.0}}, 2);
  EXPECT_EQ(layout.shard_of(Point{Meters{-50.0}, Meters{0.0}}), 0);
  EXPECT_EQ(layout.shard_of(Point{Meters{5000.0}, Meters{0.0}}), 1);
}

TEST(ShardLayout, SingleShardOwnsEverything) {
  const ShardLayout layout(Region{Meters{1000.0}, Meters{500.0}}, 1);
  EXPECT_EQ(layout.shard_of(Point{Meters{999.0}, Meters{499.0}}), 0);
}

TEST(ShardCount, ParseMirrorsThreadCountRules) {
  EXPECT_EQ(parse_shard_count(nullptr), 1);
  EXPECT_EQ(parse_shard_count(""), 1);
  EXPECT_EQ(parse_shard_count("garbage"), 1);
  EXPECT_EQ(parse_shard_count("0"), 1);
  EXPECT_EQ(parse_shard_count("-3"), 1);
  EXPECT_EQ(parse_shard_count("8"), 8);
  EXPECT_EQ(parse_shard_count("8x"), 1);
}

TEST(ShardCount, ResolvePicksDefaultForZero) {
  EXPECT_EQ(resolve_shard_count(4), 4);
  EXPECT_EQ(resolve_shard_count(-2), 1);
  EXPECT_GE(resolve_shard_count(0), 1);
}

// A region wide enough that audibility genuinely differs per stripe: with
// the default channel model the conservative audibility radius is ~6.6 km,
// so gateways 100 km apart cannot both hear one node.
struct WideFixture {
  Deployment deployment{Region{Meters{200000.0}, Meters{1000.0}},
                        spectrum_1m6()};
  Network* network = nullptr;
  PacketIdSource ids;

  // Gateways: one deep in each half, plus a pair straddling the border.
  Point gw_west{Meters{50000.0}, Meters{500.0}};
  Point gw_border_west{Meters{99000.0}, Meters{500.0}};
  Point gw_border_east{Meters{101000.0}, Meters{500.0}};
  Point gw_east{Meters{150000.0}, Meters{500.0}};

  WideFixture() {
    network = &deployment.add_network("op");
    const auto plan = standard_plan(deployment.spectrum(), 0);
    for (const auto& pos :
         {gw_west, gw_border_west, gw_border_east, gw_east}) {
      auto& gw = network->add_gateway(deployment.next_gateway_id(), pos,
                                      default_profile());
      gw.apply_channels(GatewayChannelConfig{plan.channels});
    }
  }

  EndNode& add_node(Point pos) {
    NodeRadioConfig cfg;
    cfg.channel = deployment.spectrum().grid_channel(0);
    cfg.dr = DataRate::kDR0;
    cfg.tx_power = Dbm{14.0};
    return network->add_node(deployment.next_node_id(), pos, cfg);
  }

  [[nodiscard]] Dbm prune_floor() const {
    return noise_floor_dbm(kLoRaBandwidth125k) - RunOptions{}.prune_margin;
  }
};

TEST(ShardMembership, NodeAudibleInOneShardOnly) {
  WideFixture f;
  auto& caches = f.deployment.shard_caches(2);
  const NodeId node = 1000;
  const Point near_west{Meters{50100.0}, Meters{500.0}};
  EXPECT_NE(caches.slice(0).ensure_row_if_audible(node, near_west,
                                                  f.prune_floor(), kMaxTxPower),
            LinkCache::kInvalidRow);
  EXPECT_EQ(caches.slice(1).ensure_row_if_audible(node, near_west,
                                                  f.prune_floor(), kMaxTxPower),
            LinkCache::kInvalidRow);
}

TEST(ShardMembership, BoundaryNodeAudibleInAllShards) {
  WideFixture f;
  auto& caches = f.deployment.shard_caches(2);
  const NodeId node = 1001;
  // Mid-border: ~1 km from both straddling gateways, one per stripe.
  const Point border{Meters{100000.0}, Meters{500.0}};
  EXPECT_NE(caches.slice(0).ensure_row_if_audible(node, border,
                                                  f.prune_floor(), kMaxTxPower),
            LinkCache::kInvalidRow);
  EXPECT_NE(caches.slice(1).ensure_row_if_audible(node, border,
                                                  f.prune_floor(), kMaxTxPower),
            LinkCache::kInvalidRow);
}

TEST(ShardMembership, DeadZoneNodeAudibleNowhere) {
  WideFixture f;
  auto& caches = f.deployment.shard_caches(2);
  const NodeId node = 1002;
  // ~49 km past the easternmost gateway.
  const Point dead{Meters{199000.0}, Meters{500.0}};
  EXPECT_EQ(caches.slice(0).ensure_row_if_audible(node, dead, f.prune_floor(),
                                                  kMaxTxPower),
            LinkCache::kInvalidRow);
  EXPECT_EQ(caches.slice(1).ensure_row_if_audible(node, dead, f.prune_floor(),
                                                  kMaxTxPower),
            LinkCache::kInvalidRow);
  // The rejection is memoized: same origin and structure, same answer.
  EXPECT_EQ(caches.slice(1).ensure_row_if_audible(node, dead, f.prune_floor(),
                                                  kMaxTxPower),
            LinkCache::kInvalidRow);
  EXPECT_EQ(caches.slice(1).row_of(node), LinkCache::kInvalidRow);
}

TEST(ShardMembership, NewGatewayInvalidatesRejectionMemo) {
  WideFixture f;
  auto& caches = f.deployment.shard_caches(2);
  const NodeId node = 1003;
  const Point dead{Meters{199000.0}, Meters{500.0}};
  LinkCache& east = caches.slice(1);
  ASSERT_EQ(east.ensure_row_if_audible(node, dead, f.prune_floor(),
                                       kMaxTxPower),
            LinkCache::kInvalidRow);
  const std::uint64_t epoch_before = east.structure_epoch();
  // A gateway appears next to the dead zone; the memo must not mask it.
  auto& gw = f.network->add_gateway(f.deployment.next_gateway_id(),
                                    Point{Meters{198500.0}, Meters{500.0}},
                                    default_profile());
  gw.apply_channels(GatewayChannelConfig{
      standard_plan(f.deployment.spectrum(), 0).channels});
  auto& refreshed = f.deployment.shard_caches(2);
  EXPECT_GT(refreshed.slice(1).structure_epoch(), epoch_before);
  EXPECT_NE(refreshed.slice(1).ensure_row_if_audible(node, dead,
                                                     f.prune_floor(),
                                                     kMaxTxPower),
            LinkCache::kInvalidRow);
}

TEST(ShardMembership, MovedOriginReprobesRejectedNode) {
  WideFixture f;
  auto& caches = f.deployment.shard_caches(2);
  const NodeId node = 1004;
  const Point dead{Meters{199000.0}, Meters{500.0}};
  LinkCache& east = caches.slice(1);
  ASSERT_EQ(east.ensure_row_if_audible(node, dead, f.prune_floor(),
                                       kMaxTxPower),
            LinkCache::kInvalidRow);
  // The same virtual id reappears near a gateway (id reuse by traffic
  // generators): the stale rejection must not stick.
  const Point near_east{Meters{150100.0}, Meters{500.0}};
  EXPECT_NE(east.ensure_row_if_audible(node, near_east, f.prune_floor(),
                                       kMaxTxPower),
            LinkCache::kInvalidRow);
}

TEST(ShardRunner, WideWorldDigestIsShardInvariant) {
  auto run_digest = [](int shards) {
    WideFixture f;
    std::vector<EndNode*> nodes;
    // Nodes spread across both stripes, the border, and the dead zone.
    for (const double x : {49800.0, 50300.0, 99500.0, 100000.0, 100600.0,
                           149700.0, 150400.0, 199000.0}) {
      nodes.push_back(&f.add_node(Point{Meters{x}, Meters{480.0}}));
    }
    RunOptions options;
    options.shards = shards;
    ScenarioRunner runner(f.deployment, /*seed=*/7, options);
    const auto txs = concurrent_burst(nodes, Seconds{0.0}, f.ids);
    return fate_digest(runner.run_window(txs).fates);
  };
  const std::uint64_t mono = run_digest(1);
  EXPECT_EQ(run_digest(2), mono);
  EXPECT_EQ(run_digest(8), mono);
}

TEST(ShardRunner, StatsReportBoundaryAndResidency) {
  WideFixture f;
  std::vector<EndNode*> nodes;
  nodes.push_back(&f.add_node(Point{Meters{50300.0}, Meters{480.0}}));
  nodes.push_back(&f.add_node(Point{Meters{99800.0}, Meters{480.0}}));
  nodes.push_back(&f.add_node(Point{Meters{199000.0}, Meters{480.0}}));
  RunOptions options;
  options.shards = 2;
  ScenarioRunner runner(f.deployment, /*seed=*/7, options);
  const auto txs = concurrent_burst(nodes, Seconds{0.0}, f.ids);
  (void)runner.run_window(txs);
  const ShardWindowStats& stats = runner.shard_stats();
  EXPECT_EQ(stats.shards, 2);
  // The west node is resident only in shard 0, the border node in both,
  // and the dead-zone node nowhere: three rows total, one of them across
  // the border from its home stripe.
  EXPECT_EQ(stats.resident_rows, 3u);
  EXPECT_EQ(stats.boundary_rows, 1u);
}

}  // namespace
}  // namespace alphawan
