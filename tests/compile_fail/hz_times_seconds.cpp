// Compile-fail case: multiplying two quantities (derived dimension)
//
// Without CF_MISUSE this file must compile (positive control proving the
// harness sees a working translation unit). With -DCF_MISUSE it must NOT
// compile — ctest runs both variants (see CMakeLists.txt).
#include "common/units.hpp"

using namespace alphawan;

constexpr Hz ok = Hz{125e3} * 2.0;  // scalar scaling is the only product
#ifdef CF_MISUSE
constexpr double bad = (Hz{125e3} * Seconds{1.0}).value();  // cycles not modeled
#endif

int main() { return 0; }
