#include "core/log_parser.hpp"

#include <algorithm>
#include <set>

namespace alphawan {

LinkEstimates parse_links(std::span<const UplinkRecord> log,
                          const std::map<NodeId, Dbm>& tx_power_of) {
  LinkEstimates estimates;
  std::set<std::pair<NodeId, PacketId>> seen;
  for (const auto& rec : log) {
    auto& node = estimates.nodes[rec.node];
    auto [it, inserted] = node.gateway_snr.try_emplace(rec.gateway, rec.snr);
    if (!inserted) it->second = std::max(it->second, rec.snr);
    if (seen.insert({rec.node, rec.packet}).second) ++node.packets;
    const auto power_it = tx_power_of.find(rec.node);
    if (power_it != tx_power_of.end()) {
      node.observed_tx_power = power_it->second;
    }
  }
  return estimates;
}

std::map<NodeId, std::vector<std::size_t>> per_window_counts(
    std::span<const UplinkRecord> log, Seconds window_len,
    std::size_t num_windows) {
  std::map<NodeId, std::vector<std::size_t>> series;
  std::set<PacketId> counted;
  for (const auto& rec : log) {
    if (!counted.insert(rec.packet).second) continue;  // dedup gateways
    if (rec.timestamp < Seconds{0.0}) continue;
    const auto w = static_cast<std::size_t>(rec.timestamp / window_len);
    if (w >= num_windows) continue;
    auto& counts = series[rec.node];
    if (counts.size() < num_windows) counts.resize(num_windows, 0);
    ++counts[w];
  }
  return series;
}

}  // namespace alphawan
