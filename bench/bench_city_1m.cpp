// City-scale stress run (paper Sec. 5.2.1): ~1M emulated users (100k
// physical nodes x 10 duty-cycled users each) across 64 gateways on the
// 4.8 MHz band, driven through the sharded engine. The bench exists to
// prove two PR-6 claims at scale:
//   - throughput: the receive pipeline sustains city-scale windows, with
//     packets/sec telemetry recorded as "city_1m.window" (BENCH_PR6.json);
//   - memory: collectors and link state stay O(live state), not
//     O(history) — the streaming MetricsCollector keeps a bounded ring
//     and the per-shard LinkCache slices materialize only audible rows.
// Smoke mode (ALPHAWAN_BENCH_SMOKE=1) shrinks the world and additionally
// self-checks shard equivalence: the same seed must produce bit-identical
// fate digests at shards 1, 2 and 8, else the process exits non-zero.
#include "harness.hpp"

#include <sys/resource.h>

#include "check/digest.hpp"
#include "sim/shard.hpp"

using namespace alphawan;
using namespace alphawan::bench;

namespace {

constexpr Seconds kWindow{30.0};
constexpr int kUsersPerNode = 10;
// Heartbeat-class uplink load: sized so the full configuration offers
// ~100k packets per window from the 1M-user population.
constexpr double kPacketsPerUserPerWindow = 0.1;

PerfAccumulator window_perf("city_1m.window");

struct CityConfig {
  std::size_t physical_nodes;
  int gateways;
  int windows;
  Meters width;
  Meters height;
};

struct RunStats {
  std::uint64_t digest = 0;
  std::size_t offered = 0;
  std::size_t delivered = 0;
  std::size_t served_users = 0;
  std::size_t history_size = 0;
  std::size_t evicted = 0;
  std::size_t resident_rows = 0;
  std::size_t boundary_rows = 0;
  std::size_t boundary_events = 0;
};

RunStats run_city(const CityConfig& cfg, int shards, std::uint64_t seed,
                  bool timed) {
  Deployment deployment{Region{cfg.width, cfg.height}, spectrum_4m8(),
                        urban_channel(seed)};
  auto& network = deployment.add_network("city");
  Rng rng(seed);
  deployment.place_gateways(network, cfg.gateways, default_profile(), rng);
  deployment.place_nodes(network, cfg.physical_nodes, rng);

  StandardLorawanOptions std_options;
  std_options.adr.installation_margin = Db{10.0};
  std_options.adr.min_tx_power = Dbm{8.0};
  StandardLorawanPolicy(std_options).configure(deployment, network, rng);

  RunOptions options;
  options.shards = shards;
  ScenarioRunner runner(deployment, seed, options);
  MetricsCollector metrics;  // streaming: bounded ring, exact aggregates

  RunStats stats;
  PacketIdSource ids;
  const double rate = kPacketsPerUserPerWindow / kWindow.value();
  for (int w = 0; w < cfg.windows; ++w) {
    Rng traffic_rng(seed * 31 + static_cast<std::uint64_t>(w) + 1);
    std::vector<Transmission> txs;
    NodeId virtual_base = 1'000'000;
    for (auto& node : network.nodes()) {
      std::vector<EndNode*> one = {&node};
      auto node_txs = emulated_user_traffic(one, kUsersPerNode, kWindow, rate,
                                            traffic_rng, ids, virtual_base);
      virtual_base += kUsersPerNode;
      txs.insert(txs.end(), node_txs.begin(), node_txs.end());
    }
    sort_by_start(txs);
    const auto result =
        timed ? window_perf.time(
                    txs.size(), [&] { return runner.run_window(txs, metrics); })
              : runner.run_window(txs, metrics);
    stats.digest = stats.digest * 0x100000001B3ULL ^ fate_digest(result.fates);
    const ShardWindowStats& window_stats = runner.shard_stats();
    stats.resident_rows = std::max(stats.resident_rows,
                                   window_stats.resident_rows);
    stats.boundary_rows = std::max(stats.boundary_rows,
                                   window_stats.boundary_rows);
    stats.boundary_events += window_stats.boundary_events;
  }
  stats.offered = metrics.total_offered();
  stats.delivered = metrics.total_delivered();
  stats.served_users = metrics.total_served_nodes();
  stats.history_size = metrics.history_size();
  stats.evicted = metrics.evicted();
  return stats;
}

std::size_t peak_rss_mib() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // ru_maxrss is KiB on Linux.
  return static_cast<std::size_t>(usage.ru_maxrss) / 1024;
}

void print_stats(const RunStats& stats, int shards) {
  std::printf("  shards=%d  offered=%zu  delivered=%zu  prr=%.3f\n", shards,
              stats.offered, stats.delivered,
              stats.offered > 0 ? static_cast<double>(stats.delivered) /
                                      static_cast<double>(stats.offered)
                                : 0.0);
  std::printf("  served users=%zu  fate ring=%zu (evicted %zu)\n",
              stats.served_users, stats.history_size, stats.evicted);
  std::printf("  link rows resident=%zu  boundary rows=%zu  "
              "boundary events=%zu\n",
              stats.resident_rows, stats.boundary_rows,
              stats.boundary_events);
  std::printf("  peak RSS=%zu MiB\n", peak_rss_mib());
}

}  // namespace

int main() {
  const bool smoke = perf_smoke_mode();
  const CityConfig cfg =
      smoke ? CityConfig{2000, 8, 1, Meters{8000.0}, Meters{4000.0}}
            : CityConfig{100000, 64, 3, Meters{24000.0}, Meters{12000.0}};
  int shards = 8;
  if (const char* env = std::getenv("ALPHAWAN_SHARDS")) {
    shards = parse_shard_count(env);
  }

  print_header(
      "City scale (Sec. 5.2.1) — 1M emulated users through the sharded "
      "engine\nmemory must stay O(live state); smoke mode self-checks "
      "shard equivalence");
  std::printf("  nodes=%zu  users=%zu  gateways=%d  windows=%d\n",
              cfg.physical_nodes,
              cfg.physical_nodes * static_cast<std::size_t>(kUsersPerNode),
              cfg.gateways, cfg.windows);

  if (smoke) {
    const auto s1 = run_city(cfg, 1, 77, /*timed=*/false);
    const auto s2 = run_city(cfg, 2, 77, /*timed=*/false);
    const auto s8 = run_city(cfg, 8, 77, /*timed=*/true);
    if (s1.digest != s2.digest || s1.digest != s8.digest) {
      std::printf("FAIL: shard digests diverge: shards1=%016llx "
                  "shards2=%016llx shards8=%016llx\n",
                  static_cast<unsigned long long>(s1.digest),
                  static_cast<unsigned long long>(s2.digest),
                  static_cast<unsigned long long>(s8.digest));
      return 1;
    }
    print_note("shard-equivalence self-check passed (shards 1/2/8)");
    print_stats(s8, 8);
  } else {
    const auto stats = run_city(cfg, shards, 77, /*timed=*/true);
    print_stats(stats, shards);
  }
  window_perf.report();
  return 0;
}
