#include "core/log_parser.hpp"

#include <gtest/gtest.h>

namespace alphawan {
namespace {

UplinkRecord record(PacketId packet, NodeId node, GatewayId gw, Db snr,
                    Seconds t = Seconds{0.0}) {
  UplinkRecord r;
  r.packet = packet;
  r.node = node;
  r.gateway = gw;
  r.snr = snr;
  r.timestamp = t;
  return r;
}

TEST(LogParser, BestSnrPerGateway) {
  const std::vector<UplinkRecord> log = {
      record(1, 10, 1, Db{-5.0}),
      record(2, 10, 1, Db{-2.0}),
      record(2, 10, 2, Db{-9.0}),
  };
  const auto links = parse_links(log);
  const auto& node = links.nodes.at(10);
  EXPECT_DOUBLE_EQ(node.gateway_snr.at(1).value(), -2.0);
  EXPECT_DOUBLE_EQ(node.gateway_snr.at(2).value(), -9.0);
  EXPECT_EQ(node.packets, 2u);  // packet 2 heard twice counts once
}

TEST(LogParser, EmptyLog) {
  EXPECT_TRUE(parse_links({}).empty());
}

TEST(LogParser, TxPowerAnnotation) {
  const std::vector<UplinkRecord> log = {record(1, 10, 1, Db{-5.0})};
  const auto links = parse_links(log, {{10, Dbm{8.0}}});
  EXPECT_DOUBLE_EQ(links.nodes.at(10).observed_tx_power.value(), 8.0);
  // Missing entries default to 14 dBm.
  const auto defaults = parse_links(log);
  EXPECT_DOUBLE_EQ(defaults.nodes.at(10).observed_tx_power.value(), 14.0);
}

TEST(LogParser, PerWindowCountsBucketsByTime) {
  const std::vector<UplinkRecord> log = {
      record(1, 10, 1, Db{0.0}, Seconds{5.0}),    // window 0
      record(2, 10, 1, Db{0.0}, Seconds{15.0}),   // window 1
      record(3, 10, 1, Db{0.0}, Seconds{16.0}),   // window 1
      record(4, 11, 1, Db{0.0}, Seconds{25.0}),   // window 2
      record(4, 11, 2, Db{0.0}, Seconds{25.0}),   // duplicate of packet 4
      record(5, 11, 1, Db{0.0}, Seconds{99.0}),   // beyond horizon: ignored
  };
  const auto series = per_window_counts(log, Seconds{10.0}, 3);
  EXPECT_EQ(series.at(10), (std::vector<std::size_t>{1, 2, 0}));
  EXPECT_EQ(series.at(11), (std::vector<std::size_t>{0, 0, 1}));
}

}  // namespace
}  // namespace alphawan
