// Figure 3 reproduction: per-node packet reception ratios of 20 concurrent
// nodes at a single COTS gateway under the paper's controlled schemes.
//   (a) first preamble symbol ordered   (b) last preamble symbol ordered
//   (c) SNR mix                          (d) crowded vs idle channels
//   (e,f) two coexisting networks' nodes contending for one gateway
#include "harness.hpp"

#include "net/sync_word.hpp"
#include "radio/gateway_radio.hpp"

using namespace alphawan;
using namespace alphawan::bench;

namespace {

const Spectrum kSpec = spectrum_1m6();
constexpr int kTrials = 25;

GatewayRadio make_radio(NetworkId network = 0) {
  GatewayRadio radio(default_profile(), network,
                     sync_word_for_network(network));
  std::vector<Channel> channels;
  for (int i = 0; i < 8; ++i) channels.push_back(kSpec.grid_channel(i));
  radio.configure_channels(channels);
  return radio;
}

Transmission make_tx(PacketId id, int channel, SpreadingFactor sf,
                     NetworkId network = 0) {
  Transmission tx;
  tx.id = id;
  tx.node = static_cast<NodeId>(id);
  tx.network = network;
  tx.sync_word = sync_word_for_network(network);
  tx.channel = kSpec.grid_channel(channel);
  tx.params.sf = sf;
  return tx;
}

// Runs `trials` randomized repetitions of a 20-node scheme and prints the
// per-node PRR row.
template <typename SchemeFn>
void run_scheme(const char* name, SchemeFn&& scheme) {
  std::vector<int> received(20, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    auto radio = make_radio();
    const std::vector<RxEvent> events = scheme(trial);
    const auto outcomes = radio.process(events);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].disposition == RxDisposition::kDelivered) {
        ++received[i];
      }
    }
  }
  std::printf("  %-34s", name);
  for (int i = 0; i < 20; ++i) {
    std::printf(" %.2f", static_cast<double>(received[i]) / kTrials);
  }
  std::printf("\n");
}

std::vector<RxEvent> base_events(Rng& rng, Dbm power = Dbm{-80.0},
                                 std::uint32_t payload = 10) {
  std::vector<RxEvent> events;
  for (int i = 0; i < 20; ++i) {
    const int channel = i % 8;
    const auto sf = sf_from_index((i / 8) % kNumSpreadingFactors);
    Transmission tx = make_tx(static_cast<PacketId>(i + 1), channel, sf);
    tx.payload_bytes = payload;
    events.push_back(RxEvent{tx, power + Db{rng.uniform(-0.5, 0.5)}});
  }
  return events;
}

}  // namespace

int main() {
  print_header(
      "Fig. 3 — gateway lock-on semantics, 20 concurrent nodes, 16 decoders\n"
      "columns: per-node PRR, node 1..20");

  Rng rng(3);

  std::printf("\n");
  // Scheme (a) uses long payloads (the paper's packets span the whole
  // 20-slot schedule): preamble lengths then decide the dispatch order.
  run_scheme("(a) first-preamble-symbol ordered", [&](int trial) {
    // Interleave SFs across the node order so preamble durations — and
    // therefore lock-on order — differ wildly from start order.
    std::vector<RxEvent> events;
    for (int i = 0; i < 20; ++i) {
      // SF9..SF12 mix: every packet outlives the whole lock-on schedule,
      // and the preamble-length spread scrambles lock-on order.
      const int sf_idx = 2 + (i * 3 + i / 8) % 4;
      Transmission tx = make_tx(static_cast<PacketId>(i + 1), i % 8,
                                sf_from_index(sf_idx));
      tx.payload_bytes = 64;
      tx.start = Seconds{0.001 * (i + 1) + trial * 50.0};
      events.push_back(RxEvent{tx, Dbm{-80.0 + rng.uniform(-0.5, 0.5)}});
    }
    return events;
  });
  print_note("paper (a): dropped nodes scattered (lock-on, not start order)");

  run_scheme("(b) last-preamble-symbol ordered", [&](int trial) {
    auto events = base_events(rng);
    for (std::size_t i = 0; i < events.size(); ++i) {
      events[i].tx.start = Seconds{0.001 * (static_cast<double>(i) + 1.0) +
                                   trial * 50.0} -
                           preamble_duration(events[i].tx.params);
    }
    return events;
  });
  print_note("paper (b): nodes 17-20 drop to 0 PRR, nodes 1-16 at 1.0");

  run_scheme("(c) nodes 1-10 at -10 dB lower SNR", [&](int trial) {
    auto events = base_events(rng);
    for (std::size_t i = 0; i < events.size(); ++i) {
      events[i].tx.start = Seconds{0.001 * (static_cast<double>(i) + 1.0) +
                                   trial * 50.0} -
                           preamble_duration(events[i].tx.params);
      if (i < 10) events[i].rx_power -= Db{6.0};  // weaker but decodable
    }
    return events;
  });
  print_note("paper (c): no SNR priority; same drop pattern as (b)");

  run_scheme("(d) channels 1-3 crowded, 4 idle", [&](int trial) {
    std::vector<RxEvent> events;
    for (int i = 0; i < 20; ++i) {
      // 15 nodes on channels 0-2 (all SFs + repeats at distinct SFs via
      // wider SF stride), 5 on channels 3-7.
      const int channel = i < 15 ? i % 3 : 3 + (i - 15);
      const int sf_idx = i < 15 ? (i / 3) % 6 : i % 6;
      Transmission tx = make_tx(static_cast<PacketId>(i + 1), channel,
                                sf_from_index(sf_idx));
      tx.start = Seconds{0.001 * (i + 1) + trial * 50.0} -
                 preamble_duration(tx.params);
      events.push_back(RxEvent{tx, Dbm{-80.0}});
    }
    return events;
  });
  print_note("paper (d): crowded and idle channels treated alike");

  // (e)/(f): two networks of 10 nodes each, interleaved lock-ons, one
  // gateway per network. PRR per node as seen by each network's gateway.
  std::printf("\n");
  for (int observer = 0; observer < 2; ++observer) {
    std::vector<int> received(20, 0);
    for (int trial = 0; trial < kTrials; ++trial) {
      auto radio = make_radio(static_cast<NetworkId>(observer));
      std::vector<RxEvent> events;
      for (int i = 0; i < 20; ++i) {
        const auto network = static_cast<NetworkId>(i % 2);  // interleaved
        const int channel = i % 8;
        const auto sf = sf_from_index((i / 8) % kNumSpreadingFactors);
        Transmission tx =
            make_tx(static_cast<PacketId>(i + 1), channel, sf, network);
        tx.start = Seconds{0.001 * (i + 1) + trial * 50.0} -
                   preamble_duration(tx.params);
        events.push_back(RxEvent{tx, Dbm{-80.0}});
      }
      const auto outcomes = radio.process(events);
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].disposition == RxDisposition::kDelivered) {
          ++received[i];
        }
      }
    }
    std::printf("  (%c) gateway of network %d:          ",
                observer == 0 ? 'e' : 'f', observer + 1);
    for (int i = 0; i < 20; ++i) {
      std::printf(" %.2f", static_cast<double>(received[i]) / kTrials);
    }
    std::printf("\n");
  }
  print_note(
      "paper (e,f): each gateway only delivers its own network's early\n"
      "  packets; the other network's packets still consumed its decoders,\n"
      "  so late own-network packets drop");
  return 0;
}
