#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace alphawan {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::reset() { *this = RunningStats{}; }

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

std::vector<double> empirical_cdf(std::vector<double> samples,
                                  const std::vector<double>& thresholds) {
  std::sort(samples.begin(), samples.end());
  std::vector<double> out;
  out.reserve(thresholds.size());
  for (double t : thresholds) {
    const auto it = std::upper_bound(samples.begin(), samples.end(), t);
    const auto below = static_cast<double>(it - samples.begin());
    out.push_back(samples.empty() ? 0.0
                                  : below / static_cast<double>(samples.size()));
  }
  return out;
}

double jain_fairness(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins, 0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need bins > 0 and hi > lo");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++bins_.front();
    return;
  }
  if (x >= hi_) {
    ++bins_.back();
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  idx = std::min(idx, bins_.size() - 1);
  ++bins_[idx];
}

double Histogram::bin_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(bins_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return bin_lo(i + 1);
}

}  // namespace alphawan
