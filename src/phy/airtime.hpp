// LoRa time-on-air computation (Semtech SX127x/AN1200.13 formula).
//
// The gateway radio model uses these durations for preamble lock-on timing
// (when a decoder is claimed) and payload end (when it is released), which
// together determine the FCFS dispatch order at the heart of the decoder
// contention problem.
#pragma once

#include <cstddef>

#include "phy/lora_params.hpp"

namespace alphawan {

// Duration of one LoRa symbol: 2^SF / BW.
[[nodiscard]] Seconds symbol_duration(SpreadingFactor sf, Hz bandwidth);

// Duration of the preamble (n_preamble + 4.25 symbols).
[[nodiscard]] Seconds preamble_duration(const TxParams& params);

// Number of payload symbols per the Semtech formula (includes header/CRC
// overhead and low-data-rate optimization for SF11/SF12 @ 125 kHz).
[[nodiscard]] std::size_t payload_symbols(const TxParams& params,
                                          std::size_t payload_bytes);

// Duration of the payload part (symbols * symbol time).
[[nodiscard]] Seconds payload_duration(const TxParams& params,
                                       std::size_t payload_bytes);

// Complete time on air: preamble + payload.
[[nodiscard]] Seconds time_on_air(const TxParams& params,
                                  std::size_t payload_bytes);

// Effective PHY bitrate (payload bytes / time on air), for throughput
// accounting in the Fig. 13 bench.
[[nodiscard]] double effective_bitrate(const TxParams& params,
                                       std::size_t payload_bytes);

// Whether the low-data-rate optimization is mandated (symbol time > 16 ms).
[[nodiscard]] bool low_data_rate_optimize(SpreadingFactor sf, Hz bandwidth);

}  // namespace alphawan
