#include "check/invariants.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "radio/decoder_pool.hpp"

namespace alphawan {
namespace {

std::string join(const std::vector<std::string>& parts) {
  std::ostringstream out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out << "; ";
    out << parts[i];
  }
  return out.str();
}

}  // namespace

void SimInvariants::violate(std::string message) {
  if (fail_fast_) {
    throw std::logic_error("SimInvariants: " + message);
  }
  violations_.push_back(std::move(message));
}

void SimInvariants::require_clean() const {
  if (!ok()) {
    throw std::logic_error("SimInvariants: " + join(violations_));
  }
}

void SimInvariants::clear() {
  pools_.clear();
  violations_.clear();
  last_lock_on_ = Seconds{-1e300};
  in_window_ = false;
  windows_checked_ = 0;
  events_observed_ = 0;
}

void SimInvariants::on_pool_reset(const DecoderPool& pool) {
  pools_[&pool].held.clear();
}

void SimInvariants::on_pool_acquire(const DecoderPool& pool, Seconds now,
                                    Seconds until, NetworkId network,
                                    PacketId packet) {
  (void)network;
  ++events_observed_;
  auto& state = pools_[&pool];
  if (until < now) {
    std::ostringstream msg;
    msg << "decoder acquired for packet " << packet << " releases at "
        << until << " before acquisition at " << now;
    violate(msg.str());
  }
  if (!state.held.insert(packet).second) {
    std::ostringstream msg;
    msg << "packet " << packet << " acquired a decoder it already holds";
    violate(msg.str());
  }
  if (state.held.size() > pool.capacity()) {
    std::ostringstream msg;
    msg << "decoder pool exceeded capacity " << pool.capacity() << " ("
        << state.held.size() << " held) acquiring packet " << packet;
    violate(msg.str());
  }
}

void SimInvariants::on_pool_release(const DecoderPool& pool, PacketId packet,
                                    bool was_held) {
  ++events_observed_;
  auto& state = pools_[&pool];
  const bool tracked = state.held.erase(packet) > 0;
  if (!was_held || !tracked) {
    std::ostringstream msg;
    msg << "packet " << packet
        << " released a decoder it does not hold (double-free)";
    violate(msg.str());
  }
}

void SimInvariants::on_pool_refusal(const DecoderPool& pool, Seconds now,
                                    NetworkId network, PacketId packet) {
  (void)now;
  (void)network;
  ++events_observed_;
  const auto& state = pools_[&pool];
  if (state.held.size() < pool.capacity()) {
    std::ostringstream msg;
    msg << "packet " << packet << " was refused a decoder while only "
        << state.held.size() << "/" << pool.capacity() << " are held";
    violate(msg.str());
  }
}

void SimInvariants::on_radio_window_begin() {
  in_window_ = true;
  last_lock_on_ = Seconds{-1e300};
}

void SimInvariants::on_dispatch(Seconds arrival, Seconds lock_on,
                                PacketId packet) {
  ++events_observed_;
  if (lock_on < arrival) {
    std::ostringstream msg;
    msg << "packet " << packet << " locked on at " << lock_on
        << " before its arrival at " << arrival;
    violate(msg.str());
  }
  if (in_window_ && lock_on < last_lock_on_) {
    std::ostringstream msg;
    msg << "FCFS violation: packet " << packet << " dispatched at lock-on "
        << lock_on << " after a dispatch at " << last_lock_on_;
    violate(msg.str());
  }
  last_lock_on_ = lock_on;
}

void SimInvariants::check_window(const WindowResult& result) {
  ++windows_checked_;
  std::map<NetworkId, std::size_t> offered;
  std::map<NetworkId, std::size_t> delivered;
  for (const auto& fate : result.fates) {
    ++offered[fate.network];
    if (fate.delivered) ++delivered[fate.network];
    if (fate.delivered != (fate.cause == LossCause::kDelivered)) {
      std::ostringstream msg;
      msg << "packet " << fate.packet << " has delivered=" << fate.delivered
          << " but cause=" << loss_cause_name(fate.cause);
      violate(msg.str());
    }
  }
  for (const auto& [network, count] : result.offered) {
    const auto it = offered.find(network);
    const std::size_t from_fates = it == offered.end() ? 0 : it->second;
    if (count != from_fates) {
      std::ostringstream msg;
      msg << "network " << network << " offered count " << count
          << " disagrees with fate stream (" << from_fates << ")";
      violate(msg.str());
    }
  }
  for (const auto& [network, count] : result.delivered) {
    const auto it = delivered.find(network);
    const std::size_t from_fates = it == delivered.end() ? 0 : it->second;
    if (count != from_fates) {
      std::ostringstream msg;
      msg << "network " << network << " delivered count " << count
          << " disagrees with fate stream (" << from_fates << ")";
      violate(msg.str());
    }
  }
  for (const auto& [network, count] : offered) {
    if (!result.offered.contains(network)) {
      std::ostringstream msg;
      msg << "fate stream mentions network " << network
          << " missing from the window's offered map";
      violate(msg.str());
    }
    (void)count;
  }
}

void SimInvariants::check_metrics(const MetricsCollector& metrics) {
  const auto networks = metrics.networks();
  std::size_t offered_sum = 0;
  std::size_t delivered_sum = 0;
  std::size_t bytes_sum = 0;
  for (const NetworkId network : networks) {
    const std::size_t offered = metrics.offered(network);
    const std::size_t delivered = metrics.delivered(network);
    offered_sum += offered;
    delivered_sum += delivered;
    bytes_sum += metrics.delivered_bytes(network);
    std::size_t losses = 0;
    for (const auto cause :
         {LossCause::kDecoderContentionIntra, LossCause::kDecoderContentionInter,
          LossCause::kChannelContentionIntra, LossCause::kChannelContentionInter,
          LossCause::kOther}) {
      losses += metrics.losses(network, cause);
    }
    if (offered != delivered + losses) {
      std::ostringstream msg;
      msg << "network " << network << " conservation broken: offered "
          << offered << " != delivered " << delivered << " + losses "
          << losses;
      violate(msg.str());
    }
  }
  if (offered_sum != metrics.total_offered()) {
    std::ostringstream msg;
    msg << "total offered " << metrics.total_offered()
        << " != per-network sum " << offered_sum;
    violate(msg.str());
  }
  if (delivered_sum != metrics.total_delivered()) {
    std::ostringstream msg;
    msg << "total delivered " << metrics.total_delivered()
        << " != per-network sum " << delivered_sum;
    violate(msg.str());
  }
  if (bytes_sum != metrics.total_delivered_bytes()) {
    std::ostringstream msg;
    msg << "total delivered bytes " << metrics.total_delivered_bytes()
        << " != per-network sum " << bytes_sum;
    violate(msg.str());
  }
  std::size_t total_losses = 0;
  for (const auto cause :
       {LossCause::kDecoderContentionIntra, LossCause::kDecoderContentionInter,
        LossCause::kChannelContentionIntra, LossCause::kChannelContentionInter,
        LossCause::kOther}) {
    total_losses += metrics.losses(cause);
  }
  if (metrics.total_offered() != metrics.total_delivered() + total_losses) {
    std::ostringstream msg;
    msg << "total conservation broken: offered " << metrics.total_offered()
        << " != delivered " << metrics.total_delivered() << " + losses "
        << total_losses;
    violate(msg.str());
  }
  // The recent-fate ring is bounded; retained + evicted must account for
  // every offered packet, and while nothing has been evicted the ring is
  // the complete history, so its delivered count must match the aggregate.
  const std::size_t expected_history =
      std::min(metrics.total_offered(), metrics.history_limit());
  if (metrics.history_size() != expected_history) {
    std::ostringstream msg;
    msg << "fate ring size " << metrics.history_size() << " != expected "
        << expected_history << " (offered " << metrics.total_offered()
        << ", limit " << metrics.history_limit() << ")";
    violate(msg.str());
  }
  if (metrics.history_size() + metrics.evicted() != metrics.total_offered()) {
    std::ostringstream msg;
    msg << "fate ring " << metrics.history_size() << " + evicted "
        << metrics.evicted() << " != total offered "
        << metrics.total_offered();
    violate(msg.str());
  }
  std::size_t dr_delivered = 0;
  for (const DataRate dr : kAllDataRates) {
    dr_delivered += metrics.delivered_by_dr(dr);
  }
  if (dr_delivered != metrics.total_delivered()) {
    std::ostringstream msg;
    msg << "per-DR delivered sum " << dr_delivered << " != total delivered "
        << metrics.total_delivered();
    violate(msg.str());
  }
  if (metrics.evicted() == 0) {
    std::size_t delivered_fates = 0;
    for (const auto& fate : metrics.recent_fates()) {
      if (fate.delivered) ++delivered_fates;
    }
    if (delivered_fates != metrics.total_delivered()) {
      std::ostringstream msg;
      msg << "delivered fates " << delivered_fates << " != total delivered "
          << metrics.total_delivered();
      violate(msg.str());
    }
  }
}

SimInvariants* invariants_from_env() {
  static const bool enabled = [] {
    const char* value = std::getenv("ALPHAWAN_CHECK");
    return value != nullptr && value[0] != '\0' &&
           !(value[0] == '0' && value[1] == '\0');
  }();
  if (!enabled) return nullptr;
  static SimInvariants checker = [] {
    SimInvariants c;
    c.set_fail_fast(true);
    return c;
  }();
  return &checker;
}

}  // namespace alphawan
