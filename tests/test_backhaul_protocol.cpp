#include "backhaul/master_protocol.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace alphawan {
namespace {

template <typename T>
T round_trip(const T& msg) {
  const auto bytes = encode_message(msg);
  const auto decoded = decode_message(bytes);
  EXPECT_TRUE(decoded.has_value());
  const T* typed = std::get_if<T>(&*decoded);
  EXPECT_NE(typed, nullptr);
  return *typed;
}

TEST(MasterProtocol, RegisterRoundTrip) {
  RegisterMsg msg{7, "operator-seven"};
  EXPECT_EQ(round_trip(msg), msg);
}

TEST(MasterProtocol, RegisterAckRoundTrip) {
  RegisterAckMsg msg{7, 123};
  EXPECT_EQ(round_trip(msg), msg);
}

TEST(MasterProtocol, PlanRequestRoundTrip) {
  PlanRequestMsg msg{3, Hz{916.8e6}, Hz{4.8e6}, 24};
  EXPECT_EQ(round_trip(msg), msg);
}

TEST(MasterProtocol, PlanAssignRoundTrip) {
  PlanAssignMsg msg;
  msg.operator_id = 2;
  msg.master_epoch = 17;
  msg.overlap_ratio = 0.4;
  msg.frequency_offset = Hz{75e3};
  msg.channels = {Channel{Hz{923.3e6 + 75e3}, Hz{125e3}},
                  Channel{Hz{923.5e6 + 75e3}, Hz{125e3}}};
  const auto back = round_trip(msg);
  EXPECT_EQ(back, msg);
  EXPECT_EQ(back.master_epoch, 17u);
}

TEST(MasterProtocol, PlanAssignEmptyChannels) {
  PlanAssignMsg msg;
  EXPECT_EQ(round_trip(msg), msg);
}

TEST(MasterProtocol, ErrorRoundTrip) {
  ErrorMsg msg{42, "nope"};
  EXPECT_EQ(round_trip(msg), msg);
}

TEST(MasterProtocol, UnknownTagRejected) {
  std::vector<std::uint8_t> bytes = {0xFF, 0x00};
  EXPECT_FALSE(decode_message(bytes).has_value());
}

TEST(MasterProtocol, EmptyRejected) {
  EXPECT_FALSE(decode_message({}).has_value());
}

TEST(MasterProtocol, TruncationRejected) {
  const auto bytes = encode_message(PlanRequestMsg{3, Hz{916.8e6}, Hz{4.8e6}, 24});
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    const std::span<const std::uint8_t> prefix(bytes.data(), cut);
    EXPECT_FALSE(decode_message(prefix).has_value()) << "cut at " << cut;
  }
}

TEST(MasterProtocol, TrailingGarbageRejected) {
  auto bytes = encode_message(RegisterMsg{1, "x"});
  bytes.push_back(0x00);
  EXPECT_FALSE(decode_message(bytes).has_value());
}

TEST(MasterProtocol, AbsurdChannelCountRejected) {
  BufferWriter w;
  w.u8(4);  // kPlanAssign
  w.u16(1);
  w.f64(0.4);
  w.f64(0.0);
  w.u32(1u << 30);  // claims a billion channels
  EXPECT_FALSE(decode_message(w.data()).has_value());
}

TEST(MasterProtocol, EverySingleBitFlipRejected) {
  // The CRC-32 trailer detects all single-bit errors, so corruption can
  // never be silently accepted as a (different) valid message.
  const auto bytes =
      encode_message(PlanAssignMsg{2, 5, 0.4, Hz{75e3},
                                   {Channel{Hz{923.3e6}, Hz{125e3}}}});
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto flipped = bytes;
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(decode_message(flipped).has_value()) << "bit " << bit;
  }
}

TEST(MasterProtocol, NonFiniteFloatsRejected) {
  const double bad_values[] = {std::numeric_limits<double>::infinity(),
                               -std::numeric_limits<double>::infinity(),
                               std::numeric_limits<double>::quiet_NaN()};
  for (const double bad : bad_values) {
    EXPECT_FALSE(decode_message(encode_message(
                     PlanRequestMsg{3, Hz{bad}, Hz{4.8e6}, 24}))
                     .has_value());
    PlanAssignMsg assign;
    assign.channels = {Channel{Hz{bad}, Hz{125e3}}};
    EXPECT_FALSE(decode_message(encode_message(assign)).has_value());
  }
}

}  // namespace
}  // namespace alphawan
