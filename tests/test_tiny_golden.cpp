// Tiny end-to-end golden scenario: 2 networks x 2 gateways x 8 nodes on a
// shared channel plan, one burst window, exact per-cause loss counts
// checked against tests/golden/tiny_scenario.txt. On mismatch the test
// prints the full bless block to paste into the golden file (see
// docs/testing.md).
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "sim/scenario.hpp"
#include "sim/traffic.hpp"

namespace alphawan {
namespace {

constexpr std::uint64_t kSeed = 2025;

struct TinyWorld {
  std::unique_ptr<Deployment> deployment;
  std::vector<Transmission> txs;
};

TinyWorld build_tiny_world() {
  ChannelModelConfig channel;
  channel.shadowing_sigma_db = Db{0.3};
  channel.fast_fading_sigma_db = Db{0.1};
  TinyWorld world;
  world.deployment = std::make_unique<Deployment>(
      Region{Meters{900.0}, Meters{900.0}}, spectrum_1m6(), channel);
  PacketIdSource ids;
  std::vector<EndNode*> nodes;
  const auto plan = standard_plan(world.deployment->spectrum(), 0);
  for (int n = 0; n < 2; ++n) {
    auto& network =
        world.deployment->add_network("tiny-" + std::to_string(n));
    for (int g = 0; g < 2; ++g) {
      auto& gw = network.add_gateway(
          world.deployment->next_gateway_id(),
          Point{Meters{380.0 + 140.0 * g}, Meters{420.0 + 60.0 * n}},
          default_profile());
      gw.apply_channels(GatewayChannelConfig{plan.channels});
    }
    for (int i = 0; i < 8; ++i) {
      NodeRadioConfig cfg;
      // Only 4 distinct channels across 16 nodes: guaranteed contention.
      cfg.channel = world.deployment->spectrum().grid_channel(i % 4);
      cfg.dr = static_cast<DataRate>(i % 3);
      cfg.tx_power = Dbm{14.0};
      nodes.push_back(&network.add_node(
          world.deployment->next_node_id(),
          Point{Meters{360.0 + 30.0 * i}, Meters{390.0 + 40.0 * n + 8.0 * i}},
          cfg));
    }
  }
  world.txs = concurrent_burst(nodes, Seconds{0.0}, ids);
  return world;
}

std::map<std::string, std::size_t> run_tiny_scenario() {
  TinyWorld world = build_tiny_world();
  ScenarioRunner runner(*world.deployment, kSeed);
  MetricsCollector metrics;
  const auto result = runner.run_window(world.txs, metrics);
  std::map<std::string, std::size_t> counts;
  counts["offered"] = result.total_offered();
  counts["delivered"] = result.total_delivered();
  counts["decoder_intra"] = metrics.losses(LossCause::kDecoderContentionIntra);
  counts["decoder_inter"] = metrics.losses(LossCause::kDecoderContentionInter);
  counts["channel_intra"] = metrics.losses(LossCause::kChannelContentionIntra);
  counts["channel_inter"] = metrics.losses(LossCause::kChannelContentionInter);
  counts["other"] = metrics.losses(LossCause::kOther);
  for (const auto& [network, delivered] : result.delivered) {
    counts["net" + std::to_string(network) + "_delivered"] = delivered;
  }
  return counts;
}

std::string bless_block(const std::map<std::string, std::size_t>& counts) {
  std::ostringstream out;
  for (const auto& [key, value] : counts) out << key << ' ' << value << '\n';
  return out.str();
}

TEST(TinyGolden, ExactPerCauseLossCountsMatchGoldenFile) {
  const auto actual = run_tiny_scenario();
  std::ifstream in(std::string(ALPHAWAN_GOLDEN_DIR) + "/tiny_scenario.txt");
  ASSERT_TRUE(in.good())
      << "missing tests/golden/tiny_scenario.txt — bless it with:\n"
      << bless_block(actual);
  std::map<std::string, std::size_t> expected;
  std::string key;
  std::size_t value = 0;
  while (in >> key >> value) expected[key] = value;
  EXPECT_EQ(actual, expected)
      << "tiny scenario drifted from golden counts; if intentional, "
         "re-bless tests/golden/tiny_scenario.txt with:\n"
      << bless_block(actual);
}

TEST(TinyGolden, CountsAreInternallyConsistent) {
  const auto counts = run_tiny_scenario();
  EXPECT_EQ(counts.at("offered"), 16u);  // 2 networks x 8 nodes, one burst
  EXPECT_EQ(counts.at("offered"),
            counts.at("delivered") + counts.at("decoder_intra") +
                counts.at("decoder_inter") + counts.at("channel_intra") +
                counts.at("channel_inter") + counts.at("other"));
}

TEST(TinyGolden, RerunIsBitIdentical) {
  EXPECT_EQ(run_tiny_scenario(), run_tiny_scenario());
}

}  // namespace
}  // namespace alphawan
